//! The `soe-serve/v1` wire protocol: line-delimited JSON requests and
//! responses.
//!
//! # Request
//!
//! One JSON object per line:
//!
//! ```json
//! {"proto":"soe-serve/v1","id":"alice-0001","client":"alice",
//!  "scenario":{"roster":["swim","eon"],"policy":"fairness","f":0.5,
//!              "warmup_cycles":20000,"measure_cycles":60000}}
//! ```
//!
//! `control` (optional, default `""`) may be `"shutdown"` to ask the
//! service to stop accepting and drain. Every field is validated by
//! [`Request::check`] / [`Scenario::check`]; a malformed line or a
//! failed validation produces a structured `error` response, never a
//! crash.
//!
//! # Response
//!
//! One JSON object per line, tagged by `type`:
//!
//! * `result` — the completed scenario (`singles` + `run`), exactly
//!   once per accepted request, byte-deterministic for a given request.
//! * `error` — the request was rejected (`code`:
//!   `parse`/`proto`/`field`/`duplicate`/`journal`/`internal`).
//! * `shed` — the client's queue was full; the request was refused
//!   *before* being accepted (backpressure, not failure).
//! * `quarantined` — the request was accepted but every simulation
//!   attempt failed; it is recorded in the failure manifest.
//! * `drain` — the final line before exit: totals for the session.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::metrics::{PairRun, SingleRun};

/// The protocol identifier every request must carry.
pub const PROTOCOL: &str = "soe-serve/v1";

/// Hard ceiling on warm-up or measurement cycles per request, so one
/// request cannot monopolize a worker for hours.
pub const MAX_CYCLES: u64 = 100_000_000;

/// Smallest admissible measurement window (shorter windows produce
/// meaningless IPC figures).
pub const MIN_MEASURE_CYCLES: u64 = 10_000;

/// Largest admissible roster (threads per simulated machine).
pub const MAX_ROSTER: usize = 8;

/// Why a request line was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line is not well-formed JSON for the request schema.
    Parse(String),
    /// The `proto` field names a protocol this server does not speak.
    Proto {
        /// What the request claimed.
        got: String,
    },
    /// A field failed validation.
    Field {
        /// The offending field (dotted path, e.g. `scenario.roster`).
        field: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl RequestError {
    /// Stable machine-readable error code for the `error` response.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::Parse(_) => "parse",
            RequestError::Proto { .. } => "proto",
            RequestError::Field { .. } => "field",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Parse(msg) => write!(f, "malformed request: {msg}"),
            RequestError::Proto { got } => {
                write!(
                    f,
                    "unsupported protocol {got:?} (this server speaks {PROTOCOL})"
                )
            }
            RequestError::Field { field, reason } => write!(f, "invalid `{field}`: {reason}"),
        }
    }
}

/// What to simulate: a roster of benchmarks under a policy at a sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Benchmarks to co-schedule, one simulated thread each
    /// (2–[`MAX_ROSTER`] names from the SPEC-like profile set).
    pub roster: Vec<String>,
    /// `"fairness"` (the paper's mechanism) or `"timeslice"` (the
    /// Section 6 baseline).
    pub policy: String,
    /// Target fairness `F` in `[0, 1]` (ignored by `timeslice`).
    pub f: f64,
    /// Cycle quota for the `timeslice` policy (required nonzero there,
    /// ignored by `fairness`).
    #[serde(default)]
    pub timeslice_cycles: u64,
    /// Warm-up cycles (statistics discarded).
    pub warmup_cycles: u64,
    /// Measurement window in cycles.
    pub measure_cycles: u64,
}

impl Scenario {
    /// Validates every field, returning the first violation.
    ///
    /// # Errors
    ///
    /// [`RequestError::Field`] naming the offending field.
    pub fn check(&self) -> Result<(), RequestError> {
        let fail = |field: &str, reason: String| {
            Err(RequestError::Field {
                field: format!("scenario.{field}"),
                reason,
            })
        };
        // roster: bounded size, every name a known benchmark profile.
        if self.roster.len() < 2 || self.roster.len() > MAX_ROSTER {
            return fail(
                "roster",
                format!(
                    "need 2..={MAX_ROSTER} benchmarks, got {}",
                    self.roster.len()
                ),
            );
        }
        for name in &self.roster {
            if soe_workloads::spec::profile(name).is_none() {
                return fail("roster", format!("unknown benchmark {name:?}"));
            }
        }
        // policy: a known discipline.
        match self.policy.as_str() {
            "fairness" => {}
            "timeslice" => {
                // timeslice_cycles: the quota must be usable.
                if self.timeslice_cycles == 0 || self.timeslice_cycles > MAX_CYCLES {
                    return fail(
                        "timeslice_cycles",
                        format!(
                            "timeslice policy needs a quota in 1..={MAX_CYCLES}, got {}",
                            self.timeslice_cycles
                        ),
                    );
                }
            }
            other => {
                return fail(
                    "policy",
                    format!("unknown policy {other:?} (expected \"fairness\" or \"timeslice\")"),
                );
            }
        }
        // f: a meaningful fairness target.
        if !self.f.is_finite() || !(0.0..=1.0).contains(&self.f) {
            return fail(
                "f",
                format!("fairness target must be in [0, 1], got {}", self.f),
            );
        }
        // warmup_cycles / measure_cycles: bounded work per request.
        if self.warmup_cycles > MAX_CYCLES {
            return fail(
                "warmup_cycles",
                format!("at most {MAX_CYCLES} cycles, got {}", self.warmup_cycles),
            );
        }
        if self.measure_cycles < MIN_MEASURE_CYCLES || self.measure_cycles > MAX_CYCLES {
            return fail(
                "measure_cycles",
                format!(
                    "need {MIN_MEASURE_CYCLES}..={MAX_CYCLES} cycles, got {}",
                    self.measure_cycles
                ),
            );
        }
        Ok(())
    }

    /// The scheduling cost of this scenario in simulated thread-cycles
    /// — what the deficit-round-robin queue charges the client.
    pub fn cost(&self) -> f64 {
        (self.warmup_cycles + self.measure_cycles) as f64 * (self.roster.len() + 1) as f64
    }
}

/// A journal-safe token: non-empty, bounded, `[A-Za-z0-9._-]` only (no
/// spaces — journal keys are space-delimited — and no path separators).
fn check_token(field: &'static str, value: &str, max: usize) -> Result<(), RequestError> {
    if value.is_empty() || value.len() > max {
        return Err(RequestError::Field {
            field: field.to_string(),
            reason: format!("need 1..={max} characters, got {}", value.len()),
        });
    }
    if let Some(bad) = value
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(RequestError::Field {
            field: field.to_string(),
            reason: format!("character {bad:?} not allowed (use [A-Za-z0-9._-])"),
        });
    }
    Ok(())
}

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Must equal [`PROTOCOL`].
    pub proto: String,
    /// Client-chosen request id, unique per service lifetime
    /// (journal-safe token, ≤ 64 chars).
    pub id: String,
    /// The submitting client (journal-safe token, ≤ 32 chars) — the
    /// fair-queueing identity.
    pub client: String,
    /// `""` for a scenario request, `"shutdown"` to drain and exit.
    #[serde(default)]
    pub control: String,
    /// The scenario to run (required unless `control` is set).
    #[serde(default)]
    pub scenario: Option<Scenario>,
}

impl Request {
    /// Validates every field, returning the first violation.
    ///
    /// # Errors
    ///
    /// [`RequestError::Proto`] / [`RequestError::Field`].
    pub fn check(&self) -> Result<(), RequestError> {
        // proto: exact version match.
        if self.proto != PROTOCOL {
            return Err(RequestError::Proto {
                got: self.proto.clone(),
            });
        }
        // id / client: journal-safe tokens.
        check_token("id", &self.id, 64)?;
        check_token("client", &self.client, 32)?;
        // control: a known verb.
        match self.control.as_str() {
            "" => {
                // scenario: required for a plain request, and valid.
                match &self.scenario {
                    Some(sc) => sc.check()?,
                    None => {
                        return Err(RequestError::Field {
                            field: "scenario".to_string(),
                            reason: "required unless `control` is set".to_string(),
                        });
                    }
                }
            }
            "shutdown" => {}
            other => {
                return Err(RequestError::Field {
                    field: "control".to_string(),
                    reason: format!("unknown verb {other:?} (expected \"shutdown\")"),
                });
            }
        }
        Ok(())
    }
}

/// A refused request line: the error plus whatever identity could be
/// recovered from the line (empty strings when parsing failed outright).
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedLine {
    /// The request id, if the line parsed far enough to have one.
    pub id: String,
    /// The client, if the line parsed far enough to have one.
    pub client: String,
    /// Why it was refused.
    pub error: RequestError,
}

/// Parses and validates one request line.
///
/// # Errors
///
/// [`RejectedLine`] carrying the id/client when the JSON parsed but
/// validation failed, so the error response can still be correlated.
pub fn parse_request(line: &str) -> Result<Request, RejectedLine> {
    let req: Request = serde_json::from_str(line).map_err(|e| RejectedLine {
        id: String::new(),
        client: String::new(),
        error: RequestError::Parse(e.to_string()),
    })?;
    match req.check() {
        Ok(()) => Ok(req),
        Err(error) => Err(RejectedLine {
            id: req.id.clone(),
            client: req.client.clone(),
            error,
        }),
    }
}

/// A completed scenario: the per-benchmark single-thread references and
/// the multi-threaded run. Fully deterministic for a given [`Scenario`]
/// — it contains no wall-clock state, which is what makes journaled
/// replay byte-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Single-thread reference runs, in roster order.
    pub singles: Vec<SingleRun>,
    /// The multi-threaded run under the requested policy.
    pub run: PairRun,
}

/// One response line (see the module docs for the shapes).
///
/// Serialization is hand-written so every line leads with
/// `{"proto":"soe-serve/v1","type":...}` — the externally-tagged derive
/// layout would bury the discriminant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The completed scenario for an accepted request.
    Result {
        /// Echoed request id.
        id: String,
        /// Echoed client.
        client: String,
        /// The [`ScenarioResult`] as a JSON value.
        result: Value,
    },
    /// The request was rejected before being accepted.
    Error {
        /// Echoed request id (may be empty for unparseable lines).
        id: String,
        /// Echoed client (may be empty for unparseable lines).
        client: String,
        /// Machine-readable code (`parse`, `proto`, `field`,
        /// `duplicate`, `journal`, `internal`).
        code: String,
        /// Human-readable explanation.
        message: String,
    },
    /// Backpressure: the client's queue was full.
    Shed {
        /// Echoed request id.
        id: String,
        /// Echoed client.
        client: String,
        /// The client's queue depth at refusal.
        depth: u64,
        /// The per-client queue bound.
        capacity: u64,
    },
    /// The request was accepted but every attempt failed.
    Quarantined {
        /// Echoed request id.
        id: String,
        /// Echoed client.
        client: String,
        /// Attempts made before giving up.
        attempts: u64,
        /// The last failure, human-readable.
        message: String,
    },
    /// The final line: session totals.
    Drain {
        /// Results computed and emitted this session.
        served: u64,
        /// Results re-emitted verbatim from the journal (`--resume`).
        replayed: u64,
        /// Requests refused with backpressure.
        shed: u64,
        /// Requests rejected by validation.
        rejected: u64,
        /// Requests dropped by injected `drop` faults.
        dropped: u64,
        /// Requests quarantined after exhausting retries.
        quarantined: u64,
        /// Accepted requests left journaled but unserved (replayable
        /// with `--resume` after a shutdown).
        pending: u64,
    },
}

impl Response {
    /// The `type` tag this response serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Result { .. } => "result",
            Response::Error { .. } => "error",
            Response::Shed { .. } => "shed",
            Response::Quarantined { .. } => "quarantined",
            Response::Drain { .. } => "drain",
        }
    }
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("proto".to_string(), s(PROTOCOL)),
            ("type".to_string(), s(self.kind())),
        ];
        match self {
            Response::Result { id, client, result } => {
                m.push(("id".to_string(), s(id)));
                m.push(("client".to_string(), s(client)));
                m.push(("result".to_string(), result.clone()));
            }
            Response::Error {
                id,
                client,
                code,
                message,
            } => {
                m.push(("id".to_string(), s(id)));
                m.push(("client".to_string(), s(client)));
                m.push(("code".to_string(), s(code)));
                m.push(("message".to_string(), s(message)));
            }
            Response::Shed {
                id,
                client,
                depth,
                capacity,
            } => {
                m.push(("id".to_string(), s(id)));
                m.push(("client".to_string(), s(client)));
                m.push(("depth".to_string(), Value::UInt(*depth)));
                m.push(("capacity".to_string(), Value::UInt(*capacity)));
            }
            Response::Quarantined {
                id,
                client,
                attempts,
                message,
            } => {
                m.push(("id".to_string(), s(id)));
                m.push(("client".to_string(), s(client)));
                m.push(("attempts".to_string(), Value::UInt(*attempts)));
                m.push(("message".to_string(), s(message)));
            }
            Response::Drain {
                served,
                replayed,
                shed,
                rejected,
                dropped,
                quarantined,
                pending,
            } => {
                m.push(("served".to_string(), Value::UInt(*served)));
                m.push(("replayed".to_string(), Value::UInt(*replayed)));
                m.push(("shed".to_string(), Value::UInt(*shed)));
                m.push(("rejected".to_string(), Value::UInt(*rejected)));
                m.push(("dropped".to_string(), Value::UInt(*dropped)));
                m.push(("quarantined".to_string(), Value::UInt(*quarantined)));
                m.push(("pending".to_string(), Value::UInt(*pending)));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_map().ok_or_else(|| {
            DeError::custom(format!("expected a response object, got {}", v.kind()))
        })?;
        let proto: String = serde::read_field(fields, "proto")?;
        if proto != PROTOCOL {
            return Err(DeError::custom(format!(
                "unsupported response proto {proto:?}"
            )));
        }
        let kind: String = serde::read_field(fields, "type")?;
        match kind.as_str() {
            "result" => Ok(Response::Result {
                id: serde::read_field(fields, "id")?,
                client: serde::read_field(fields, "client")?,
                result: serde::read_field(fields, "result")?,
            }),
            "error" => Ok(Response::Error {
                id: serde::read_field(fields, "id")?,
                client: serde::read_field(fields, "client")?,
                code: serde::read_field(fields, "code")?,
                message: serde::read_field(fields, "message")?,
            }),
            "shed" => Ok(Response::Shed {
                id: serde::read_field(fields, "id")?,
                client: serde::read_field(fields, "client")?,
                depth: serde::read_field(fields, "depth")?,
                capacity: serde::read_field(fields, "capacity")?,
            }),
            "quarantined" => Ok(Response::Quarantined {
                id: serde::read_field(fields, "id")?,
                client: serde::read_field(fields, "client")?,
                attempts: serde::read_field(fields, "attempts")?,
                message: serde::read_field(fields, "message")?,
            }),
            "drain" => Ok(Response::Drain {
                served: serde::read_field(fields, "served")?,
                replayed: serde::read_field(fields, "replayed")?,
                shed: serde::read_field(fields, "shed")?,
                rejected: serde::read_field(fields, "rejected")?,
                dropped: serde::read_field(fields, "dropped")?,
                quarantined: serde::read_field(fields, "quarantined")?,
                pending: serde::read_field(fields, "pending")?,
            }),
            other => Err(DeError::custom(format!("unknown response type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            roster: vec!["swim".to_string(), "eon".to_string()],
            policy: "fairness".to_string(),
            f: 0.5,
            timeslice_cycles: 0,
            warmup_cycles: 20_000,
            measure_cycles: 60_000,
        }
    }

    fn request() -> Request {
        Request {
            proto: PROTOCOL.to_string(),
            id: "alice-0001".to_string(),
            client: "alice".to_string(),
            control: String::new(),
            scenario: Some(scenario()),
        }
    }

    #[test]
    fn valid_request_round_trips() {
        let req = request();
        req.check().unwrap();
        let line = serde_json::to_string(&req).unwrap();
        let back = parse_request(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn malformed_line_is_a_parse_error() {
        let err = parse_request("{oops").unwrap_err();
        assert_eq!(err.error.code(), "parse");
        assert!(err.id.is_empty());
    }

    #[test]
    fn wrong_proto_is_rejected_with_identity() {
        let mut req = request();
        req.proto = "soe-serve/v9".to_string();
        let line = serde_json::to_string(&req).unwrap();
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.error.code(), "proto");
        assert_eq!(err.id, "alice-0001");
        assert_eq!(err.client, "alice");
    }

    #[test]
    fn field_violations_name_the_field() {
        let cases: Vec<(Request, &str)> = vec![
            (
                {
                    let mut r = request();
                    r.id = "has space".to_string();
                    r
                },
                "id",
            ),
            (
                {
                    let mut r = request();
                    r.client = String::new();
                    r
                },
                "client",
            ),
            (
                {
                    let mut r = request();
                    r.control = "explode".to_string();
                    r
                },
                "control",
            ),
            (
                {
                    let mut r = request();
                    r.scenario = None;
                    r
                },
                "scenario",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.roster = vec!["swim".to_string()];
                    }
                    r
                },
                "scenario.roster",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.roster = (0..20).map(|i| format!("bench{i}")).collect();
                    }
                    r
                },
                "scenario.roster",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.policy = "lottery".to_string();
                    }
                    r
                },
                "scenario.policy",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.f = 1.5;
                    }
                    r
                },
                "scenario.f",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.policy = "timeslice".to_string();
                        sc.timeslice_cycles = 0;
                    }
                    r
                },
                "scenario.timeslice_cycles",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.warmup_cycles = MAX_CYCLES + 1;
                    }
                    r
                },
                "scenario.warmup_cycles",
            ),
            (
                {
                    let mut r = request();
                    if let Some(sc) = r.scenario.as_mut() {
                        sc.measure_cycles = 5;
                    }
                    r
                },
                "scenario.measure_cycles",
            ),
        ];
        for (req, field) in cases {
            match req.check() {
                Err(RequestError::Field { field: got, .. }) => {
                    assert_eq!(got, field, "for {req:?}")
                }
                other => panic!("expected Field({field}) error, got {other:?}"),
            }
        }
    }

    #[test]
    fn shutdown_needs_no_scenario() {
        let mut req = request();
        req.control = "shutdown".to_string();
        req.scenario = None;
        req.check().unwrap();
    }

    #[test]
    fn responses_round_trip_with_leading_tags() {
        let responses = vec![
            Response::Error {
                id: "x".to_string(),
                client: "c".to_string(),
                code: "parse".to_string(),
                message: "bad".to_string(),
            },
            Response::Shed {
                id: "x".to_string(),
                client: "c".to_string(),
                depth: 4,
                capacity: 4,
            },
            Response::Quarantined {
                id: "x".to_string(),
                client: "c".to_string(),
                attempts: 3,
                message: "panicked".to_string(),
            },
            Response::Drain {
                served: 1,
                replayed: 2,
                shed: 3,
                rejected: 4,
                dropped: 5,
                quarantined: 6,
                pending: 7,
            },
        ];
        for r in responses {
            let line = serde_json::to_string(&r).unwrap();
            assert!(
                line.starts_with(&format!(
                    "{{\"proto\":\"{PROTOCOL}\",\"type\":\"{}\"",
                    r.kind()
                )),
                "{line}"
            );
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn scenario_cost_scales_with_size() {
        let sc = scenario();
        let mut big = sc.clone();
        big.roster.push("gcc".to_string());
        assert!(big.cost() > sc.cost());
        let mut long = sc.clone();
        long.measure_cycles *= 10;
        assert!(long.cost() > sc.cost());
    }
}
