//! The service loop: accept → validate → fair-queue → supervise →
//! respond, with journaled exactly-once semantics and graceful drain.
//!
//! # Lifecycle
//!
//! One reader thread feeds request lines into the loop; each dispatched
//! request runs under [`supervise_call`] (watchdog timeout,
//! retry-with-backoff, quarantine) on its own manager thread. The loop
//! multiplexes line arrival, request completion, and shutdown:
//!
//! * **EOF** — stop accepting, *drain everything*: every queued request
//!   still runs and is answered.
//! * **Shutdown** (SIGTERM via the `shutdown` flag, or a
//!   `control:"shutdown"` request) — stop accepting *and* stop
//!   dispatching; in-flight requests finish and are answered; queued
//!   requests stay journaled (`req/<id>` without `res/<id>`) and are
//!   replayed by the next `--resume` session.
//!
//! # Exactly-once
//!
//! An accepted request is journaled (`req/<id>` → the canonical request
//! JSON) *before* it is queued; its response is journaled (`res/<id>` →
//! the response line) before it is emitted. On `--resume` every
//! journaled response is re-emitted verbatim and every accepted-but-
//! unanswered request is re-queued — so each accepted request is
//! answered exactly once across sessions, byte-identical to an
//! uninterrupted run (results are deterministic and contain no
//! wall-clock state). Refused work (shed, rejected) is answered but
//! never journaled: refusal is not acceptance.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Value;
use soe_model::FairnessLevel;
use soe_sim::SwitchPolicy;
use soe_workloads::Checkpoint;

use crate::metrics::SingleRun;
use crate::policy::{FairnessPolicy, TimeSlicePolicy};
use crate::runner::{try_run_multi_with_policy, try_run_single, RunConfig};
use crate::serve::memo::{fnv1a64, MemoCache, MemoLookup};
use crate::serve::proto::{parse_request, Request, Response, Scenario, ScenarioResult};
use crate::serve::queue::{FairQueue, QueueDiscipline};
use crate::serve::slo::{ClientTally, SloReport};
use crate::supervise::{
    supervise_call, FailureManifest, FaultPlan, Journal, Quarantined, SkippedRun, SuperviseOptions,
};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent scenario simulations.
    pub workers: usize,
    /// Per-client queue bound (DRR discipline only).
    pub capacity: usize,
    /// DRR quantum, in scenario cost units (thread-cycles); one
    /// micro-sized two-thread scenario costs ~240k.
    pub quantum: f64,
    /// Queue discipline ([`QueueDiscipline::DeficitRoundRobin`] unless
    /// deliberately running the starvation baseline).
    pub discipline: QueueDiscipline,
    /// Watchdog wall-clock budget per simulation attempt.
    pub timeout: Option<Duration>,
    /// Retries after a failed attempt before quarantining.
    pub retries: u32,
    /// Initial retry backoff (doubles per retry).
    pub backoff: Duration,
    /// Deterministic fault injection (`SOE_FAULTS`), service classes
    /// included (`io`, `drop`, `slow`).
    pub faults: Option<FaultPlan>,
    /// Where to journal accepted requests and responses; `None`
    /// disables crash recovery.
    pub journal: Option<PathBuf>,
    /// Replay the journal on startup instead of truncating it.
    pub resume: bool,
    /// Warmup-checkpoint memo cache directory; `None` disables
    /// memoization.
    pub memo_dir: Option<PathBuf>,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl ServeConfig {
    /// Defaults: 2 workers, DRR with capacity 8 and a one-micro-request
    /// quantum, 60 s watchdog, 2 retries from 100 ms, no journal, no
    /// memo, quiet.
    pub fn new() -> Self {
        Self {
            workers: 2,
            capacity: 8,
            quantum: 250_000.0,
            discipline: QueueDiscipline::DeficitRoundRobin,
            timeout: Some(Duration::from_secs(60)),
            retries: 2,
            backoff: Duration::from_millis(100),
            faults: None,
            journal: None,
            resume: false,
            memo_dir: None,
            progress: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending knob.
    pub fn check(&self) -> Result<(), String> {
        if self.workers == 0 || self.workers > 256 {
            return Err(format!("workers must be in 1..=256, got {}", self.workers));
        }
        if self.capacity == 0 || self.capacity > 65_536 {
            return Err(format!(
                "capacity must be in 1..=65536, got {}",
                self.capacity
            ));
        }
        if !self.quantum.is_finite() || self.quantum <= 0.0 {
            return Err(format!(
                "quantum must be positive and finite, got {}",
                self.quantum
            ));
        }
        if let Some(t) = self.timeout {
            if t.is_zero() {
                return Err("timeout must be nonzero (or None for no watchdog)".to_string());
            }
        }
        if self.retries > 10 {
            return Err(format!("retries must be at most 10, got {}", self.retries));
        }
        if self.backoff > Duration::from_secs(60) {
            return Err(format!(
                "backoff must be at most 60s, got {:?}",
                self.backoff
            ));
        }
        if self.resume && self.journal.is_none() {
            return Err("resume requires a journal path".to_string());
        }
        // No invariants beyond type-validity for the remaining knobs.
        let _ = (
            &self.discipline,
            &self.faults,
            &self.memo_dir,
            self.progress,
        );
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What a service session produced (besides the response stream).
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-client service levels and the fairness index.
    pub report: SloReport,
    /// Quarantined and dropped requests.
    pub manifest: FailureManifest,
    /// Accepted requests left journaled but unanswered (nonzero only
    /// after a shutdown-without-drain; replayable with `resume`).
    pub pending: u64,
}

/// A request admitted to the queue.
struct PendingReq {
    req: Request,
    scenario: Scenario,
    accepted_at: Instant,
    /// Value of the dispatch counter when this request was accepted —
    /// queue wait is measured in dispatches that happened in between.
    arrival_dispatched: u64,
}

/// A request handed to a worker, awaiting completion.
struct InFlight {
    id: String,
    client: String,
    accepted_at: Instant,
    memo_key: Option<String>,
}

enum Event {
    Line(String),
    Eof,
    Done {
        seq: u64,
        outcome: Result<String, Quarantined>,
    },
}

/// Bookkeeping shared by every response path.
struct Session<'a> {
    out: &'a mut dyn Write,
    journal: Option<Journal>,
    memo: Option<MemoCache>,
    tallies: BTreeMap<String, ClientTally>,
    manifest: FailureManifest,
    seen: BTreeSet<String>,
    served: u64,
    replayed: u64,
    shed: u64,
    rejected: u64,
    dropped: u64,
    quarantined: u64,
    progress: bool,
}

impl Session<'_> {
    fn tally(&mut self, client: &str) -> &mut ClientTally {
        self.tallies.entry(client.to_string()).or_default()
    }

    /// Serializes `resp`, journals it under `res/<id>` when `journal_id`
    /// is set, and writes it to the output stream.
    fn respond(&mut self, journal_id: Option<&str>, resp: &Response) -> std::io::Result<()> {
        let line = serde_json::to_string(resp).unwrap_or_default();
        if let (Some(j), Some(id)) = (self.journal.as_mut(), journal_id) {
            if let Err(e) = j.append(&format!("res/{id}"), &line) {
                // The response still goes out; a restart may recompute
                // and re-answer this request (deterministically, with
                // identical bytes) — degraded durability, not data loss.
                eprintln!("[soe-serve] journal append failed for res/{id}: {e}");
            }
        }
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

/// Runs the service loop over `input`, writing response lines to `out`,
/// until EOF (drain everything) or shutdown (finish in-flight, journal
/// the rest). `shutdown` is polled between events — wire it to a
/// SIGTERM handler's `AtomicBool`.
///
/// # Errors
///
/// Configuration errors ([`ServeConfig::check`]) as
/// [`std::io::ErrorKind::InvalidInput`]; journal/output I/O errors.
/// Malformed *requests* are never errors — they produce `error`
/// responses.
pub fn serve<R: Read + Send + 'static>(
    input: R,
    out: &mut dyn Write,
    cfg: &ServeConfig,
    shutdown: Option<&AtomicBool>,
) -> std::io::Result<ServeOutcome> {
    cfg.check()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    // soe-lint: allow(wall-clock, determinism-taint): SLO latency fields are documented host wall-time, never simulated state
    let session_start = Instant::now();

    let mut journal = match cfg.journal.as_deref() {
        Some(path) => Some(Journal::open(path)?),
        None => None,
    };
    if let Some(j) = journal.as_mut() {
        if !cfg.resume {
            j.reset()?;
        }
        j.set_faults(cfg.faults);
    }
    let memo = match cfg.memo_dir.as_deref() {
        Some(dir) => Some(MemoCache::open(dir)?),
        None => None,
    };

    let mut session = Session {
        out,
        journal,
        memo,
        tallies: BTreeMap::new(),
        manifest: FailureManifest::default(),
        seen: BTreeSet::new(),
        served: 0,
        replayed: 0,
        shed: 0,
        rejected: 0,
        dropped: 0,
        quarantined: 0,
        progress: cfg.progress,
    };
    let mut queue: FairQueue<PendingReq> =
        FairQueue::new(cfg.discipline, cfg.capacity, cfg.quantum);
    let mut inflight: BTreeMap<u64, InFlight> = BTreeMap::new();
    let mut dispatched: u64 = 0;
    let mut seq: u64 = 0;

    // --- Resume: re-emit journaled responses, re-queue unanswered
    // accepted requests, in first-append order.
    if cfg.resume {
        let entries: Vec<(String, String)> = session
            .journal
            .as_ref()
            .map(|j| {
                j.iter()
                    .filter_map(|(k, p)| {
                        k.strip_prefix("req/")
                            .map(|id| (id.to_string(), p.to_string()))
                    })
                    .collect()
            })
            .unwrap_or_default();
        for (id, payload) in entries {
            let stored = session
                .journal
                .as_ref()
                .and_then(|j| j.get(&format!("res/{id}")))
                .map(str::to_string);
            match stored {
                Some(line) => {
                    // Byte-identical replay of the already-journaled
                    // response.
                    session.out.write_all(line.as_bytes())?;
                    session.out.write_all(b"\n")?;
                    session.seen.insert(id.clone());
                    session.replayed += 1;
                    if let Ok(req) = serde_json::from_str::<Request>(&payload) {
                        session.tally(&req.client).replayed += 1;
                    }
                }
                None => match serde_json::from_str::<Request>(&payload) {
                    Ok(req) if req.check().is_ok() && req.scenario.is_some() => {
                        let Some(sc) = req.scenario.clone() else {
                            continue;
                        };
                        session.seen.insert(id.clone());
                        session.tally(&req.client).accepted += 1;
                        let client = req.client.clone();
                        // soe-lint: allow(wall-clock, determinism-taint): SLO latency fields are documented host wall-time, never simulated state
                        let accepted_at = Instant::now();
                        queue.push_forced(
                            &client,
                            sc.cost(),
                            PendingReq {
                                req,
                                scenario: sc,
                                accepted_at,
                                arrival_dispatched: dispatched,
                            },
                        );
                    }
                    _ => session.manifest.skipped.push(SkippedRun {
                        key: format!("req/{id}"),
                        reason: "journaled request no longer parses or validates".to_string(),
                    }),
                },
            }
        }
        session.out.flush()?;
        if session.progress {
            eprintln!(
                "[soe-serve] resume: {} response(s) replayed, {} request(s) re-queued",
                session.replayed,
                queue.len()
            );
        }
    }

    // --- Reader thread: lines in, one Eof marker at the end. The main
    // loop keeps its own Sender, so the channel never disconnects.
    let (tx, rx) = mpsc::channel::<Event>();
    {
        let reader_tx = tx.clone();
        std::thread::spawn(move || {
            let buf = BufReader::new(input);
            for line in buf.lines() {
                let Ok(line) = line else { break };
                if reader_tx.send(Event::Line(line)).is_err() {
                    return;
                }
            }
            let _ = reader_tx.send(Event::Eof);
        });
    }

    let supervise_opts = SuperviseOptions {
        workers: 1,
        timeout: cfg.timeout,
        retries: cfg.retries,
        backoff: cfg.backoff,
        faults: cfg.faults,
        progress: false,
    };

    let mut eof = false;
    let mut quit = false;
    loop {
        // Dispatch while workers are free (never after shutdown).
        while !quit && inflight.len() < cfg.workers {
            let Some((client, pending)) = queue.pop() else {
                break;
            };
            dispatched += 1;
            let wait = dispatched
                .saturating_sub(1)
                .saturating_sub(pending.arrival_dispatched) as f64;
            session.tally(&client).queue_waits.push(wait);
            let key = session.memo.as_ref().map(|_| memo_key(&pending.scenario));
            // Memo probe: a validated hit completes the request without
            // touching a worker; corruption falls back to a cold run.
            if let (Some(cache), Some(k)) = (session.memo.clone(), key.as_deref()) {
                match cache.load(k) {
                    MemoLookup::Hit(payload) => {
                        complete_ok(
                            &mut session,
                            &pending.req.id,
                            &client,
                            pending.accepted_at,
                            &payload,
                        );
                        continue;
                    }
                    MemoLookup::Corrupt(reason) => {
                        eprintln!("[soe-serve] memo entry invalid, cold-running: {reason}");
                    }
                    MemoLookup::Miss => {}
                }
            }
            seq += 1;
            inflight.insert(
                seq,
                InFlight {
                    id: pending.req.id.clone(),
                    client: client.clone(),
                    accepted_at: pending.accepted_at,
                    memo_key: key,
                },
            );
            let label = format!("req/{}", pending.req.id);
            let opts = supervise_opts;
            let scenario = pending.scenario.clone();
            let worker_tx = tx.clone();
            let this_seq = seq;
            std::thread::spawn(move || {
                let outcome = supervise_call(
                    &label,
                    this_seq as usize,
                    &opts,
                    Arc::new(move || run_scenario(&scenario)),
                );
                let _ = worker_tx.send(Event::Done {
                    seq: this_seq,
                    outcome,
                });
            });
        }

        if let Some(flag) = shutdown {
            if flag.load(Ordering::SeqCst) {
                quit = true;
            }
        }
        // Terminal condition: nothing running, and either we are
        // quitting (queued requests stay journaled) or there is nothing
        // left to accept or dispatch.
        if inflight.is_empty() && (quit || (eof && queue.is_empty())) {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(Event::Line(line)) => {
                if !quit && handle_line(&mut session, &mut queue, cfg, dispatched, &line)? {
                    quit = true;
                }
            }
            Ok(Event::Eof) => eof = true,
            Ok(Event::Done { seq, outcome }) => {
                let Some(meta) = inflight.remove(&seq) else {
                    continue;
                };
                match outcome {
                    Ok(payload) => {
                        if let (Some(cache), Some(k)) =
                            (session.memo.clone(), meta.memo_key.as_deref())
                        {
                            if let Err(e) = cache.store(k, &payload) {
                                eprintln!("[soe-serve] memo store failed for {k}: {e}");
                            }
                        }
                        complete_ok(
                            &mut session,
                            &meta.id,
                            &meta.client,
                            meta.accepted_at,
                            &payload,
                        );
                    }
                    Err(q) => {
                        let message = q
                            .failures
                            .last()
                            .map(|f| f.message.clone())
                            .unwrap_or_default();
                        let attempts = q.failures.len() as u64;
                        session.manifest.quarantined.push(q);
                        session.quarantined += 1;
                        let t = session.tally(&meta.client);
                        t.quarantined += 1;
                        t.latencies_ms
                            .push(meta.accepted_at.elapsed().as_secs_f64() * 1_000.0);
                        let resp = Response::Quarantined {
                            id: meta.id.clone(),
                            client: meta.client.clone(),
                            attempts,
                            message,
                        };
                        session.respond(Some(&meta.id), &resp)?;
                        if session.progress {
                            eprintln!("[soe-serve] quarantined req/{}", meta.id);
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    let pending = queue.len() as u64;
    let drain = Response::Drain {
        served: session.served,
        replayed: session.replayed,
        shed: session.shed,
        rejected: session.rejected,
        dropped: session.dropped,
        quarantined: session.quarantined,
        pending,
    };
    // The drain summary is session state, not a request's answer: it is
    // emitted but never journaled.
    session.respond(None, &drain)?;

    let wall_ms = session_start.elapsed().as_millis() as u64;
    let report = SloReport::build(cfg.discipline.name(), wall_ms, &session.tallies);
    Ok(ServeOutcome {
        report,
        manifest: session.manifest,
        pending,
    })
}

/// Emits (and journals) a `result` response.
fn complete_ok(
    session: &mut Session<'_>,
    id: &str,
    client: &str,
    accepted_at: Instant,
    payload: &str,
) {
    let value: Value = serde_json::from_str(payload).unwrap_or(Value::Null);
    let resp = Response::Result {
        id: id.to_string(),
        client: client.to_string(),
        result: value,
    };
    session.served += 1;
    let t = session.tally(client);
    t.completed += 1;
    t.latencies_ms
        .push(accepted_at.elapsed().as_secs_f64() * 1_000.0);
    if let Err(e) = session.respond(Some(id), &resp) {
        eprintln!("[soe-serve] emitting result for req/{id}: {e}");
    }
}

/// Processes one input line. Returns `true` when the line was a
/// shutdown request.
fn handle_line(
    session: &mut Session<'_>,
    queue: &mut FairQueue<PendingReq>,
    cfg: &ServeConfig,
    dispatched: u64,
    raw: &str,
) -> std::io::Result<bool> {
    let line = raw.trim();
    if line.is_empty() {
        return Ok(false);
    }
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(rej) => {
            session.rejected += 1;
            // Lines whose client field cannot be recovered are tallied
            // under a reserved name so the report's totals still match
            // the drain line. Real clients are validated tokens and can
            // never collide with a parenthesized name.
            let who = if rej.client.is_empty() {
                "(unattributed)"
            } else {
                rej.client.as_str()
            };
            let t = session.tally(who);
            t.submitted += 1;
            t.rejected += 1;
            let resp = Response::Error {
                id: rej.id,
                client: rej.client,
                code: rej.error.code().to_string(),
                message: rej.error.to_string(),
            };
            session.respond(None, &resp)?;
            return Ok(false);
        }
    };
    if req.control == "shutdown" {
        if session.progress {
            eprintln!("[soe-serve] shutdown requested by {}", req.client);
        }
        return Ok(true);
    }
    session.tally(&req.client).submitted += 1;
    // Injected request-drop fault: the request vanishes before
    // acceptance, as if the connection died mid-line. Recorded in the
    // manifest so chaos runs can assert on it.
    if let Some(plan) = cfg.faults {
        if plan.decide_drop(&format!("req/{}", req.id)) {
            session.dropped += 1;
            session.tally(&req.client).dropped += 1;
            session.manifest.skipped.push(SkippedRun {
                key: format!("req/{}", req.id),
                reason: "injected fault: drop (request lost before acceptance)".to_string(),
            });
            return Ok(false);
        }
    }
    if session.seen.contains(&req.id) {
        session.rejected += 1;
        session.tally(&req.client).rejected += 1;
        let resp = Response::Error {
            id: req.id.clone(),
            client: req.client.clone(),
            code: "duplicate".to_string(),
            message: format!("request id {:?} was already accepted", req.id),
        };
        session.respond(None, &resp)?;
        return Ok(false);
    }
    let Some(scenario) = req.scenario.clone() else {
        // Unreachable after check(); answer defensively rather than
        // crash.
        session.rejected += 1;
        session.tally(&req.client).rejected += 1;
        let resp = Response::Error {
            id: req.id.clone(),
            client: req.client.clone(),
            code: "internal".to_string(),
            message: "request accepted without a scenario".to_string(),
        };
        session.respond(None, &resp)?;
        return Ok(false);
    };
    // Backpressure before acceptance: a shed request is never journaled.
    if let Some(shed) = queue.would_shed(&req.client) {
        session.shed += 1;
        session.tally(&req.client).shed += 1;
        let resp = Response::Shed {
            id: req.id.clone(),
            client: req.client.clone(),
            depth: shed.depth as u64,
            capacity: shed.capacity as u64,
        };
        session.respond(None, &resp)?;
        return Ok(false);
    }
    // Acceptance: journal first (durability), then queue. A journal
    // failure refuses the request — accepting without a durable record
    // would break exactly-once on restart.
    let canonical = serde_json::to_string(&req).unwrap_or_default();
    if let Some(j) = session.journal.as_mut() {
        if let Err(e) = j.append(&format!("req/{}", req.id), &canonical) {
            session.rejected += 1;
            session.tally(&req.client).rejected += 1;
            let resp = Response::Error {
                id: req.id.clone(),
                client: req.client.clone(),
                code: "journal".to_string(),
                message: format!("could not journal acceptance: {e}"),
            };
            session.respond(None, &resp)?;
            return Ok(false);
        }
    }
    session.seen.insert(req.id.clone());
    session.tally(&req.client).accepted += 1;
    let client = req.client.clone();
    let cost = scenario.cost();
    // soe-lint: allow(wall-clock, determinism-taint): SLO latency fields are documented host wall-time, never simulated state
    let accepted_at = Instant::now();
    let pending = PendingReq {
        req,
        scenario,
        accepted_at,
        arrival_dispatched: dispatched,
    };
    if let Err(shed) = queue.push(&client, cost, pending) {
        // would_shed() was clear a moment ago and the loop is
        // single-threaded, so this is unreachable; refuse gracefully
        // anyway.
        session.shed += 1;
        let t = session.tally(&client);
        t.accepted = t.accepted.saturating_sub(1);
        t.shed += 1;
        let resp = Response::Shed {
            id: String::new(),
            client,
            depth: shed.depth as u64,
            capacity: shed.capacity as u64,
        };
        session.respond(None, &resp)?;
    }
    Ok(false)
}

/// The sizing and mechanism parameters for one scenario: `quick()`
/// parameters with the requested window sizes, and the cycle quota
/// scaled down so `quota × threads ≤ Δ` holds for any roster size.
fn scenario_run_config(sc: &Scenario) -> Result<RunConfig, String> {
    if !sc.f.is_finite() || !(0.0..=1.0).contains(&sc.f) {
        return Err(format!("fairness target out of range: {}", sc.f));
    }
    let threads = sc.roster.len().max(1) as u64;
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = sc.warmup_cycles;
    cfg.measure_cycles = sc.measure_cycles;
    cfg.fairness.target = FairnessLevel::new(sc.f);
    let per_thread = (cfg.fairness.delta / threads).max(1);
    cfg.fairness.max_cycles_quota = cfg.fairness.max_cycles_quota.min(per_thread);
    cfg.fairness.min_quota_cycles = cfg
        .fairness
        .min_quota_cycles
        .min(cfg.fairness.max_cycles_quota);
    Ok(cfg)
}

/// Runs one validated scenario to its deterministic JSON payload.
///
/// # Errors
///
/// A human-readable message (malformed roster, inconsistent mechanism
/// parameters, or a structured `SimError` from the run) — the
/// supervisor retries and ultimately quarantines on `Err`.
pub fn run_scenario(sc: &Scenario) -> Result<String, String> {
    let names: Vec<&str> = sc.roster.iter().map(String::as_str).collect();
    for name in &names {
        if soe_workloads::spec::profile(name).is_none() {
            return Err(format!("unknown benchmark {name:?}"));
        }
    }
    if names.len() < 2 {
        return Err(format!(
            "roster needs at least 2 threads, got {}",
            names.len()
        ));
    }
    let cfg = scenario_run_config(sc)?;
    // Single-thread references: one per distinct benchmark, measured on
    // the same trace (profile + base + offset) the group run schedules.
    let traces = soe_workloads::pairs::group_traces(&names);
    let mut singles_by: BTreeMap<&str, SingleRun> = BTreeMap::new();
    for (name, trace) in names.iter().zip(traces) {
        if singles_by.contains_key(name) {
            continue;
        }
        let run = try_run_single(Box::new(trace), &cfg).map_err(|e| e.to_string())?;
        singles_by.insert(name, run);
    }
    let singles: Vec<SingleRun> = names
        .iter()
        .filter_map(|n| singles_by.get(n).cloned())
        .collect();
    let (policy, target): (Box<dyn SwitchPolicy>, Option<FairnessLevel>) = match sc.policy.as_str()
    {
        "timeslice" => {
            if sc.timeslice_cycles == 0 {
                return Err("timeslice policy needs a nonzero cycle quota".to_string());
            }
            (Box::new(TimeSlicePolicy::new(sc.timeslice_cycles)), None)
        }
        "fairness" => {
            cfg.fairness.check(names.len()).map_err(|e| e.0)?;
            (
                Box::new(FairnessPolicy::new(names.len(), cfg.fairness)),
                Some(cfg.fairness.target),
            )
        }
        other => return Err(format!("unknown policy {other:?}")),
    };
    let run = try_run_multi_with_policy(&names, policy, target, &singles, &cfg)
        .map_err(|e| e.to_string())?;
    let result = ScenarioResult { singles, run };
    serde_json::to_string(&result).map_err(|e| e.to_string())
}

/// The memoization key for a scenario: roster in clear (debuggable
/// cache directories) plus a digest of the canonical scenario JSON and
/// every thread's checkpoint identity — so a change to a profile's
/// parameters, the address-space layout, *or* any request knob
/// invalidates stale entries.
pub fn memo_key(sc: &Scenario) -> String {
    let names: Vec<&str> = sc.roster.iter().map(String::as_str).collect();
    let mut ident = serde_json::to_string(sc).unwrap_or_default();
    for trace in soe_workloads::pairs::group_traces(&names) {
        ident.push('|');
        ident.push_str(&Checkpoint::capture(&trace, 0).memo_key());
    }
    format!("{}-{:016x}", sc.roster.join("+"), fnv1a64(ident.as_bytes()))
}
