//! Per-client fair request queueing — the paper's deficit-round-robin
//! mechanism, re-applied one layer up.
//!
//! The simulator's [`DeficitCounter`](crate::DeficitCounter) arbitrates
//! *thread switches* by quota; this queue arbitrates *request
//! dispatches* by cost. Each client owns a bounded FIFO; a round-robin
//! ring visits clients with work, and a client may dispatch only while
//! its deficit covers the head request's cost — otherwise it banks one
//! `quantum` and the ring moves on. A hog therefore gets exactly its
//! round-robin share no matter how fast it submits, and its overflow is
//! shed with explicit backpressure instead of buffered unboundedly.
//!
//! [`QueueDiscipline::UnboundedFifo`] is the deliberately bad baseline
//! (one global unbounded queue, arrival order) kept so tests and the
//! SLO report can demonstrate the starvation DRR prevents.

use std::collections::{BTreeMap, VecDeque};

/// Which arbitration the service queue runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Per-client bounded queues served by deficit round-robin.
    DeficitRoundRobin,
    /// One global unbounded FIFO (the starvation baseline).
    UnboundedFifo,
}

impl QueueDiscipline {
    /// Stable name for reports (`"drr"` / `"fifo"`).
    pub fn name(self) -> &'static str {
        match self {
            QueueDiscipline::DeficitRoundRobin => "drr",
            QueueDiscipline::UnboundedFifo => "fifo",
        }
    }
}

/// Backpressure: the client's queue was full at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Queue depth at refusal (== capacity).
    pub depth: usize,
    /// The per-client bound.
    pub capacity: usize,
}

#[derive(Debug)]
struct ClientQueue<T> {
    items: VecDeque<(f64, T)>,
    deficit: f64,
}

impl<T> Default for ClientQueue<T> {
    fn default() -> Self {
        Self {
            items: VecDeque::new(),
            deficit: 0.0,
        }
    }
}

/// A fair (or deliberately unfair) multi-client request queue.
#[derive(Debug)]
pub struct FairQueue<T> {
    discipline: QueueDiscipline,
    capacity: usize,
    quantum: f64,
    clients: BTreeMap<String, ClientQueue<T>>,
    /// Clients with at least one queued item, in round-robin order.
    ring: VecDeque<String>,
    fifo: VecDeque<(String, T)>,
    len: usize,
}

impl<T> FairQueue<T> {
    /// A queue under `discipline` with a per-client bound of `capacity`
    /// items and a DRR `quantum` in cost units (clamped to a positive
    /// value; callers validate sensible magnitudes via their config).
    pub fn new(discipline: QueueDiscipline, capacity: usize, quantum: f64) -> Self {
        Self {
            discipline,
            capacity: capacity.max(1),
            quantum: if quantum.is_finite() && quantum > 0.0 {
                quantum
            } else {
                1.0
            },
            clients: BTreeMap::new(),
            ring: VecDeque::new(),
            fifo: VecDeque::new(),
            len: 0,
        }
    }

    /// Queued items across all clients.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backpressure `client` would hit if it submitted now, if any.
    pub fn would_shed(&self, client: &str) -> Option<Shed> {
        if self.discipline == QueueDiscipline::UnboundedFifo {
            return None;
        }
        let depth = self.clients.get(client).map_or(0, |q| q.items.len());
        (depth >= self.capacity).then_some(Shed {
            depth,
            capacity: self.capacity,
        })
    }

    /// Enqueues `item` for `client` at `cost`.
    ///
    /// # Errors
    ///
    /// [`Shed`] when the client's bounded queue is full (DRR only —
    /// the FIFO baseline never sheds, which is exactly its problem).
    pub fn push(&mut self, client: &str, cost: f64, item: T) -> Result<(), Shed> {
        if self.discipline == QueueDiscipline::UnboundedFifo {
            self.fifo.push_back((client.to_string(), item));
            self.len += 1;
            return Ok(());
        }
        if let Some(shed) = self.would_shed(client) {
            return Err(shed);
        }
        let q = self.clients.entry(client.to_string()).or_default();
        q.items.push_back((cost.max(0.0), item));
        if q.items.len() == 1 {
            self.ring.push_back(client.to_string());
        }
        self.len += 1;
        Ok(())
    }

    /// Enqueues `item` for `client` bypassing the capacity bound — for
    /// journal replay, where the request was *already accepted* in a
    /// previous session and must not be re-refused.
    pub fn push_forced(&mut self, client: &str, cost: f64, item: T) {
        if self.discipline == QueueDiscipline::UnboundedFifo {
            self.fifo.push_back((client.to_string(), item));
            self.len += 1;
            return;
        }
        let q = self.clients.entry(client.to_string()).or_default();
        q.items.push_back((cost.max(0.0), item));
        if q.items.len() == 1 {
            self.ring.push_back(client.to_string());
        }
        self.len += 1;
    }

    /// Dequeues the next item to dispatch, with its client.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.discipline == QueueDiscipline::UnboundedFifo {
            let (client, item) = self.fifo.pop_front()?;
            self.len -= 1;
            return Some((client, item));
        }
        // Each full ring pass banks one quantum per visited client, so
        // some deficit reaches its head cost in at most
        // ceil(max_cost / quantum) passes; the loop always terminates
        // when anything is queued.
        loop {
            let name = self.ring.front()?.clone();
            let Some(q) = self.clients.get_mut(&name) else {
                // Ring invariant violated (cannot happen): drop the
                // stale entry rather than spin.
                self.ring.pop_front();
                continue;
            };
            let Some(head_cost) = q.items.front().map(|(c, _)| *c) else {
                q.deficit = 0.0;
                self.ring.pop_front();
                continue;
            };
            if q.deficit >= head_cost {
                q.deficit -= head_cost;
                let item = q.items.pop_front().map(|(_, it)| it)?;
                self.len -= 1;
                if q.items.is_empty() {
                    // An idle client must not bank credit (classic DRR:
                    // deficit resets when the queue empties).
                    q.deficit = 0.0;
                    self.ring.pop_front();
                }
                return Some((name, item));
            }
            q.deficit += self.quantum;
            self.ring.rotate_left(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue<u32>) -> Vec<String> {
        let mut order = Vec::new();
        while let Some((client, _)) = q.pop() {
            order.push(client);
        }
        order
    }

    #[test]
    fn fifo_preserves_arrival_order_and_never_sheds() {
        let mut q = FairQueue::new(QueueDiscipline::UnboundedFifo, 1, 100.0);
        for i in 0..50 {
            q.push("hog", 10.0, i).unwrap();
        }
        q.push("polite", 10.0, 99).unwrap();
        assert!(q.would_shed("hog").is_none());
        let order = drain(&mut q);
        assert_eq!(order.len(), 51);
        assert_eq!(order.last().map(String::as_str), Some("polite"));
    }

    #[test]
    fn drr_interleaves_equal_cost_clients() {
        let mut q = FairQueue::new(QueueDiscipline::DeficitRoundRobin, 16, 10.0);
        for i in 0..6 {
            q.push("a", 10.0, i).unwrap();
        }
        for i in 0..3 {
            q.push("b", 10.0, 100 + i).unwrap();
        }
        let order = drain(&mut q);
        // While both clients have work, service alternates.
        assert_eq!(
            order,
            vec!["a", "b", "a", "b", "a", "b", "a", "a", "a"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn drr_charges_by_cost_not_by_count() {
        // a's requests cost 3x b's: with quantum == small cost, b should
        // dispatch ~3 requests per a request.
        let mut q = FairQueue::new(QueueDiscipline::DeficitRoundRobin, 32, 10.0);
        for i in 0..4 {
            q.push("a", 30.0, i).unwrap();
        }
        for i in 0..12 {
            q.push("b", 10.0, 100 + i).unwrap();
        }
        let order = drain(&mut q);
        let first_8: Vec<&str> = order.iter().take(8).map(String::as_str).collect();
        let a_early = first_8.iter().filter(|c| **c == "a").count();
        let b_early = first_8.iter().filter(|c| **c == "b").count();
        assert!(
            b_early >= 2 * a_early,
            "cost-weighted service: a={a_early} b={b_early} in {order:?}"
        );
        assert_eq!(order.len(), 16);
    }

    #[test]
    fn bounded_queue_sheds_the_hog_only() {
        let mut q = FairQueue::new(QueueDiscipline::DeficitRoundRobin, 4, 10.0);
        let mut shed = 0;
        for i in 0..10 {
            if q.push("hog", 10.0, i).is_err() {
                shed += 1;
            }
        }
        assert_eq!(shed, 6);
        assert_eq!(
            q.would_shed("hog"),
            Some(Shed {
                depth: 4,
                capacity: 4
            })
        );
        assert!(q.would_shed("polite").is_none());
        q.push("polite", 10.0, 99).unwrap();
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn deficit_resets_when_a_client_goes_idle() {
        let mut q = FairQueue::new(QueueDiscipline::DeficitRoundRobin, 8, 5.0);
        q.push("a", 10.0, 0).unwrap();
        assert_eq!(q.pop(), Some(("a".to_string(), 0)));
        // If the deficit persisted, this second burst would dispatch
        // before banking new quanta; either way service still works.
        q.push("a", 10.0, 1).unwrap();
        assert_eq!(q.pop(), Some(("a".to_string(), 1)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn degenerate_quantum_is_clamped() {
        let mut q = FairQueue::new(QueueDiscipline::DeficitRoundRobin, 4, 0.0);
        q.push("a", 3.0, 7).unwrap();
        assert_eq!(q.pop(), Some(("a".to_string(), 7)));
    }
}
