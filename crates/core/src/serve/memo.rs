//! Checksummed memoization of completed scenario results.
//!
//! Repeated scenarios are the common case for a capacity-planning
//! service (many clients asking about the same roster); the cache turns
//! them into file reads. Each entry is one file,
//! `<key>.memo`, holding `<fnv1a64 hex> <payload>` — the same
//! line-checksum scheme as the supervision journal — written via
//! [`atomic_write`] so a crash can never leave a torn entry visible. A
//! corrupt or truncated entry is reported as [`MemoLookup::Corrupt`]
//! and the caller falls back to a cold run (and rewrites the entry),
//! so cache damage degrades throughput, never correctness.

use std::path::{Path, PathBuf};

use crate::supervise::atomic_write;

/// The outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoLookup {
    /// A validated payload.
    Hit(String),
    /// No entry for this key.
    Miss,
    /// An entry exists but failed validation (reason attached); treat
    /// as a miss and overwrite.
    Corrupt(String),
}

/// A directory of checksummed memo entries.
#[derive(Debug, Clone)]
pub struct MemoCache {
    dir: PathBuf,
}

impl MemoCache {
    /// Opens (creating if absent) the cache directory.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("creating memo cache dir {}: {e}", dir.display()),
            )
        })?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.memo"))
    }

    /// Probes the cache for `key`. Never fails: unreadable or invalid
    /// entries are reported as [`MemoLookup::Corrupt`].
    pub fn load(&self, key: &str) -> MemoLookup {
        let path = self.entry_path(key);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return MemoLookup::Miss,
            Err(e) => return MemoLookup::Corrupt(format!("reading {}: {e}", path.display())),
        };
        let line = raw.trim_end_matches('\n');
        let Some((hex, payload)) = line.split_once(' ') else {
            return MemoLookup::Corrupt(format!("{}: missing checksum field", path.display()));
        };
        if hex.len() != 16 {
            return MemoLookup::Corrupt(format!("{}: malformed checksum", path.display()));
        }
        let Ok(sum) = u64::from_str_radix(hex, 16) else {
            return MemoLookup::Corrupt(format!("{}: non-hex checksum", path.display()));
        };
        if fnv1a64(payload.as_bytes()) != sum {
            return MemoLookup::Corrupt(format!("{}: checksum mismatch", path.display()));
        }
        MemoLookup::Hit(payload.to_string())
    }

    /// Stores `payload` under `key`, atomically (write-to-temp, fsync,
    /// rename, fsync parent).
    ///
    /// # Errors
    ///
    /// Any I/O error from the atomic write; `payload` must be a single
    /// line (scenario results are compact JSON).
    pub fn store(&self, key: &str, payload: &str) -> std::io::Result<()> {
        if payload.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("memo payload for {key} must be a single line"),
            ));
        }
        let line = format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()));
        atomic_write(&self.entry_path(key), line.as_bytes())
    }
}

pub(super) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(tag: &str) -> MemoCache {
        let dir = std::env::temp_dir().join(format!("soe-memo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        MemoCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_load_hits() {
        let c = cache("hit");
        assert_eq!(c.load("k1"), MemoLookup::Miss);
        c.store("k1", "{\"x\":1}").unwrap();
        assert_eq!(c.load("k1"), MemoLookup::Hit("{\"x\":1}".to_string()));
    }

    #[test]
    fn corruption_is_detected_and_overwritable() {
        let c = cache("corrupt");
        c.store("k", "payload").unwrap();
        let path = c.dir().join("k.memo");
        let mut raw = std::fs::read_to_string(&path).unwrap();
        raw = raw.replace("payload", "tampered");
        atomic_write(&path, raw.as_bytes()).unwrap();
        assert!(matches!(c.load("k"), MemoLookup::Corrupt(_)));
        // The fallback path rewrites the entry; subsequent loads hit.
        c.store("k", "fresh").unwrap();
        assert_eq!(c.load("k"), MemoLookup::Hit("fresh".to_string()));
    }

    #[test]
    fn truncated_entries_are_corrupt_not_fatal() {
        let c = cache("trunc");
        c.store("k", "payload").unwrap();
        let path = c.dir().join("k.memo");
        atomic_write(&path, b"deadbeef").unwrap();
        assert!(matches!(c.load("k"), MemoLookup::Corrupt(_)));
    }

    #[test]
    fn multiline_payloads_are_rejected() {
        let c = cache("multiline");
        assert!(c.store("k", "a\nb").is_err());
    }
}
