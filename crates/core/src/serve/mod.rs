//! `soe-serve`: a robust scenario-evaluation service over the
//! simulator.
//!
//! Turns the library's run entry points into a long-lived service that
//! accepts line-delimited `soe-serve/v1` JSON requests (roster, policy,
//! fairness target, sizing) and answers each with the scenario's
//! deterministic result — while surviving the failure modes a batch
//! runner can ignore:
//!
//! * **Malformed input** is answered with a typed `error` response
//!   ([`proto::RequestError`]), never a crash.
//! * **Hog clients** are contained by per-client bounded
//!   deficit-round-robin queues ([`queue::FairQueue`]) — the paper's
//!   fairness mechanism, re-applied to request scheduling — with
//!   explicit `shed` backpressure when a queue fills.
//! * **Stuck or crashing simulations** run under the supervision
//!   layer's watchdog + retry machinery and are quarantined into a
//!   [`FailureManifest`](crate::supervise::FailureManifest) after
//!   exhausting retries.
//! * **Process death** is survivable: accepted requests and their
//!   responses are journaled, and `--resume` replays answered requests
//!   byte-identically and re-runs unanswered ones — exactly-once across
//!   restarts.
//! * **Repeated scenarios** are memoized via checksummed warmup
//!   checkpoints ([`memo::MemoCache`]); corrupt cache entries fall back
//!   to cold runs.
//!
//! Each session emits a `soe-serve-slo/1` report ([`slo::SloReport`]):
//! per-client latency percentiles, queue waits, shed counts, and the
//! Jain fairness index across clients. The `soe-serve` and
//! `soe-loadgen` binaries wrap this module; see `EXPERIMENTS.md` for
//! the protocol walkthrough.

pub mod memo;
pub mod proto;
pub mod queue;
mod service;
pub mod slo;

pub use memo::{MemoCache, MemoLookup};
pub use proto::{
    parse_request, Request, RequestError, Response, Scenario, ScenarioResult, PROTOCOL,
};
pub use queue::{FairQueue, QueueDiscipline, Shed};
pub use service::{memo_key, run_scenario, serve, ServeConfig, ServeOutcome};
pub use slo::{jain, percentile, ClientSlo, ClientTally, SloReport, SLO_SCHEMA};
