//! The paper's contribution: **fairness enforcement for Switch-on-Event
//! multithreading** (Gabor, Weiss, Mendelson — MICRO 2006), implemented
//! on top of the `soe-sim` cycle-level simulator.
//!
//! The mechanism (Sections 2–3 of the paper):
//!
//! 1. **Track** three hardware counters per thread — instructions
//!    retired, running cycles, and switch-causing last-level misses
//!    ([`HwCounters`]).
//! 2. **Estimate**, every Δ = 250 000 cycles, what each thread's IPC
//!    *would have been* had it run alone (Eq 11–13, [`Estimator`]).
//! 3. **Compute** the per-thread instructions-per-switch quota `IPSw_j`
//!    that bounds the spread of per-thread speedups by the target
//!    fairness `F` (Eq 9, [`quotas_from_estimates`]).
//! 4. **Enforce** the quota with deficit counters ([`DeficitCounter`]),
//!    forcing additional thread switches beyond the ordinary
//!    switch-on-miss events; a maximum-cycles quota guarantees every
//!    thread runs (and is measured) in every window.
//!
//! [`FairnessPolicy`] packages the mechanism as a `soe_sim`
//! [`SwitchPolicy`](soe_sim::SwitchPolicy); [`TimeSlicePolicy`] is the
//! Section 6 strawman baseline; the [`runner`] module reproduces the
//! paper's methodology (warm up → reset → measure, single-thread
//! references, pair runs across F levels).
//!
//! # Examples
//!
//! Measure a strongly unfair pair, then enforce fairness 1/2:
//!
//! ```no_run
//! use soe_core::runner::{run_experiment, RunConfig};
//! use soe_model::FairnessLevel;
//! use soe_workloads::Pair;
//!
//! let pair = Pair { a: "gcc", b: "eon" };
//! let exp = run_experiment(
//!     &pair,
//!     &[FairnessLevel::NONE, FairnessLevel::HALF],
//!     &RunConfig::quick(),
//! );
//! assert!(exp.runs[1].fairness >= exp.runs[0].fairness);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod deficit;
mod estimator;
mod metrics;
pub mod obs;
pub mod policies;
mod policy;
pub mod pool;
mod registry;
pub mod runner;
pub mod serve;
pub mod supervise;
pub mod timeseries;

pub use counters::HwCounters;
pub use deficit::DeficitCounter;
pub use estimator::{
    quotas_from_estimates, weighted_quotas_from_estimates, Estimator, WindowRecord,
};
pub use metrics::{PairRun, SingleRun, ThreadOutcome};
pub use obs::MetricsRegistry;
pub use policies::{IslipPolicy, UsageFairPolicy, WdrrPolicy};
pub use policy::{FairnessConfig, FairnessPolicy, MissLatencyMode, TimeSlicePolicy};
pub use pool::{resolve_workers, run_jobs, try_run_jobs, Job, JobError, PoolOptions};
pub use registry::{PolicyBuilder, PolicyError, PolicyFactory, PolicySpec};
pub use supervise::{
    atomic_write, supervise_call, supervise_jobs, supervise_jobs_with, FailureKind,
    FailureManifest, Fault, FaultPlan, JobFailure, Journal, JournalRecovery, Quarantined,
    SkippedRun, SuperviseOptions, SuperviseReport,
};
