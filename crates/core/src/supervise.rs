//! Crash-safe experiment supervision: journaled resume, per-job
//! watchdogs, retry with backoff, quarantine, and deterministic fault
//! injection.
//!
//! The [`pool`](crate::pool) module dispatches the experiment matrix
//! across cores; this module keeps a long matrix *alive*. It applies the
//! same DRR-style discipline the paper applies to threads to our own
//! jobs:
//!
//! * **Bounded time** — every job attempt runs on its own thread and is
//!   abandoned after a wall-clock timeout ([`SuperviseOptions::timeout`]);
//!   a hung run can no longer hold the whole matrix hostage. Inside the
//!   simulator, the forward-progress watchdog
//!   (`Machine::try_run_cycles` + `SimError::Stalled`) catches runs that
//!   tick without retiring.
//! * **Guaranteed forward progress** — panicked, failed or timed-out
//!   jobs are retried with exponential backoff
//!   ([`SuperviseOptions::retries`], [`SuperviseOptions::backoff`]) and,
//!   if they keep failing, **quarantined**: the matrix completes with
//!   partial results plus a failure manifest instead of aborting.
//! * **Durability** — the [`Journal`] is an append-only, checksummed
//!   record of completed runs. A killed process loses at most the
//!   in-flight runs; reopening the journal recovers every intact record
//!   (dropping a torn tail or bit-flipped lines) so `--resume` skips
//!   completed work and reproduces bit-identical output.
//! * **Testability** — the [`FaultPlan`] injects panics and stalls
//!   deterministically from a seed (`SOE_FAULTS=panic:0.05,stall:0.02@7`),
//!   so all of the above is exercised in tests and CI chaos runs, not
//!   just during real incidents.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::pool::{panic_message, Job, Progress};

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a temporary
/// file in the same directory (same filesystem, so the rename cannot
/// cross devices), is synced, and is renamed over the target. A crash at
/// any point leaves either the old file or the new one — never a
/// half-written mix.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename, tagged with the path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("atomic_write: {} has no file name", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{name}.tmp{}", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // The rename is only durable once the *directory entry* is on
        // disk: after a power loss an unsynced rename can silently
        // revert, losing a journal or manifest the caller believed
        // written. Sync the parent directory too.
        sync_parent_dir(path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| std::io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable. Errors are tagged with the directory path. On non-Unix hosts
/// a directory cannot be opened for syncing; the call is a no-op there.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.unwrap_or_else(|| Path::new("."));
        let handle = std::fs::File::open(dir).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("opening directory {} for fsync: {e}", dir.display()),
            )
        })?;
        handle.sync_all().map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("fsyncing directory {}: {e}", dir.display()),
            )
        })?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The run journal
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit — a small, dependency-free checksum for journal
/// records (corruption detection, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// Intact records recovered (later duplicates of a key win).
    pub kept: usize,
    /// Corrupt lines dropped: a torn tail from a crash mid-append, or
    /// bit-flipped lines failing their checksum.
    pub dropped: usize,
}

/// An append-only, checksummed record of completed runs.
///
/// Each record is one line, `<fnv1a64 hex> <key> <payload>\n`, where the
/// checksum covers `<key> <payload>`. Keys must not contain spaces or
/// newlines; payloads must not contain newlines (JSON fits both).
/// Appends are a single `write_all` + flush + sync, so a crash can only
/// tear the *last* line; [`Journal::open`] drops any line that fails to
/// parse or checksum and — if anything was dropped — compacts the file
/// atomically so the corruption never accumulates.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    // BTreeMap so any future iteration over entries is ordered; replay
    // order is carried separately by `order` (insertion sequence).
    entries: BTreeMap<String, String>,
    order: Vec<String>,
    recovery: JournalRecovery,
    /// Armed injected write failures (the `io:P` fault class).
    faults: Option<FaultPlan>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovering every
    /// intact record.
    ///
    /// # Errors
    ///
    /// Any I/O error from reading or (when compaction is needed)
    /// rewriting the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let raw = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("reading journal {}: {e}", path.display()),
                ));
            }
        };
        let mut entries = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut recovery = JournalRecovery::default();
        for line in raw.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some((key, payload)) => {
                    recovery.kept += 1;
                    if entries.insert(key.clone(), payload).is_none() {
                        order.push(key);
                    }
                }
                None => recovery.dropped += 1,
            }
        }
        if recovery.dropped > 0 {
            // Compact: rewrite only the intact records, atomically, so
            // the next crash-recovery starts from a clean file.
            let mut clean = Vec::new();
            for key in &order {
                if let Some(payload) = entries.get(key) {
                    Self::encode_line(&mut clean, key, payload);
                }
            }
            atomic_write(&path, &clean)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| {
                std::io::Error::new(e.kind(), format!("opening journal {}: {e}", path.display()))
            })?;
        Ok(Self {
            path,
            file,
            entries,
            order,
            recovery,
            faults: None,
        })
    }

    fn parse_line(line: &[u8]) -> Option<(String, String)> {
        let line = std::str::from_utf8(line).ok()?;
        let (hex, rest) = line.split_once(' ')?;
        if hex.len() != 16 {
            return None;
        }
        let sum = u64::from_str_radix(hex, 16).ok()?;
        if fnv1a64(rest.as_bytes()) != sum {
            return None;
        }
        let (key, payload) = rest.split_once(' ')?;
        Some((key.to_string(), payload.to_string()))
    }

    fn encode_line(out: &mut Vec<u8>, key: &str, payload: &str) {
        let body = format!("{key} {payload}");
        out.extend_from_slice(format!("{:016x} {body}\n", fnv1a64(body.as_bytes())).as_bytes());
    }

    /// What recovery found when this journal was opened.
    pub fn recovery(&self) -> JournalRecovery {
        self.recovery
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The payload recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Iterates `(key, payload)` records in first-append order — the
    /// order a resuming service must replay them in.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.order
            .iter()
            .filter_map(|k| self.entries.get(k).map(|p| (k.as_str(), p.as_str())))
    }

    /// Arms deterministic injected write failures (the `io:P` class of
    /// the [`FaultPlan`] grammar): each append attempt draws from the
    /// plan and, on a hit, fails before touching the file. Appends retry
    /// up to [`Journal::APPEND_ATTEMPTS`] times, so only a persistent
    /// injected fault (or a real I/O error) surfaces to the caller.
    pub fn set_faults(&mut self, faults: Option<FaultPlan>) {
        self.faults = faults;
    }

    /// Write attempts per [`Journal::append`] before the error surfaces.
    pub const APPEND_ATTEMPTS: u32 = 3;

    /// Appends (or overwrites) a record durably: the line is written in
    /// one `write_all`, flushed, and synced before this returns. Write
    /// failures — real or injected via [`Journal::set_faults`] — are
    /// retried up to [`Journal::APPEND_ATTEMPTS`] times. A torn partial
    /// line left by a failed attempt is dropped by the next
    /// [`Journal::open`] recovery; the retried full line supersedes it.
    ///
    /// # Errors
    ///
    /// The last error once every attempt failed; also if `key` contains
    /// a space or either part contains a newline (which would tear the
    /// line format).
    pub fn append(&mut self, key: &str, payload: &str) -> std::io::Result<()> {
        if key.is_empty() || key.contains(' ') || key.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal key {key:?} must be non-empty and contain no space/newline"),
            ));
        }
        if payload.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal payload for {key} must not contain newlines"),
            ));
        }
        let mut line = Vec::new();
        Self::encode_line(&mut line, key, payload);
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 1..=Self::APPEND_ATTEMPTS {
            if let Some(plan) = self.faults {
                if plan.decide_io(key, attempt) {
                    last_err = Some(std::io::Error::other(format!(
                        "injected fault: io (journal append {key}, attempt {attempt})"
                    )));
                    continue;
                }
            }
            match self.write_line(&line) {
                Ok(()) => {
                    if self
                        .entries
                        .insert(key.to_string(), payload.to_string())
                        .is_none()
                    {
                        self.order.push(key.to_string());
                    }
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("journal append failed")))
    }

    /// One durable write attempt of an encoded line.
    fn write_line(&mut self, line: &[u8]) -> std::io::Result<()> {
        self.file.write_all(line)?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Truncates the journal to empty (a fresh, non-resumed matrix).
    ///
    /// # Errors
    ///
    /// Any I/O error from the truncation.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.entries.clear();
        self.order.clear();
        self.recovery = JournalRecovery::default();
        Ok(())
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// A fault decision for one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Run the job normally.
    None,
    /// Panic before the job body runs.
    Panic,
    /// Sleep for the given duration before the job body runs (long
    /// enough, relative to the watchdog timeout, to look hung).
    Stall(Duration),
}

/// Seed-driven fault injection: every `(job key, attempt)` pair maps
/// deterministically to a fault decision, so a chaos run is exactly
/// reproducible and a retry of the same job may deterministically
/// succeed.
///
/// # The `SOE_FAULTS` grammar (the single source of truth)
///
/// ```text
/// SOE_FAULTS = class ("," class)* ("@" seed)?
/// class      = "panic:P"     probability an attempt panics
///            | "stall:P"     probability an attempt sleeps `stall_ms`
///                            (long enough to trip the watchdog)
///            | "stall_ms:N"  stall duration in ms (default 2000)
///            | "io:P"        probability a journal write attempt fails
///                            (appends retry; see `Journal::set_faults`)
///            | "drop:P"      probability the service layer loses an
///                            incoming request before accepting it
///            | "slow:P"      probability an attempt is delayed `slow_ms`
///                            (latency, not a hang)
///            | "slow_ms:N"   slow-worker delay in ms (default 250)
/// ```
///
/// Probabilities are in `[0, 1]`; the seed (default 0) is mixed into
/// every decision. Example: `panic:0.05,io:0.2,slow:0.1,slow_ms:50@7`.
/// The matrix engine exercises `panic`/`stall`/`io`; `drop` and `slow`
/// are consumed by the `serve` service layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability an attempt panics.
    pub panic_prob: f64,
    /// Probability an attempt stalls (checked after the panic draw).
    pub stall_prob: f64,
    /// How long a stalled attempt sleeps.
    pub stall: Duration,
    /// Probability a journal write attempt fails (`io:P`).
    pub io_prob: f64,
    /// Probability an incoming service request is dropped (`drop:P`).
    pub drop_prob: f64,
    /// Probability an attempt is delayed by [`FaultPlan::slow`]
    /// (`slow:P`).
    pub slow_prob: f64,
    /// How long a slow attempt is delayed.
    pub slow: Duration,
    /// Seed mixed into every decision.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan with every fault class off (probability 0) at `seed`.
    pub fn none(seed: u64) -> Self {
        Self {
            panic_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(2_000),
            io_prob: 0.0,
            drop_prob: 0.0,
            slow_prob: 0.0,
            slow: Duration::from_millis(250),
            seed,
        }
    }

    /// Parses a spec in the grammar documented on [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (body, seed) = match spec.rsplit_once('@') {
            Some((body, seed)) => (
                body,
                seed.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("SOE_FAULTS: bad seed {seed:?}"))?,
            ),
            None => (spec, 0),
        };
        let mut plan = Self::none(seed);
        let parse_ms = |name: &str, value: &str| {
            value
                .parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("SOE_FAULTS: bad {name} {value:?}"))
        };
        for entry in body.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("SOE_FAULTS: entry {entry:?} is not name:value"))?;
            let value = value.trim();
            match name.trim() {
                "panic" => plan.panic_prob = parse_prob(value)?,
                "stall" => plan.stall_prob = parse_prob(value)?,
                "stall_ms" => plan.stall = parse_ms("stall_ms", value)?,
                "io" => plan.io_prob = parse_prob(value)?,
                "drop" => plan.drop_prob = parse_prob(value)?,
                "slow" => plan.slow_prob = parse_prob(value)?,
                "slow_ms" => plan.slow = parse_ms("slow_ms", value)?,
                other => return Err(format!("SOE_FAULTS: unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `SOE_FAULTS` environment variable.
    ///
    /// # Errors
    ///
    /// The [`FaultPlan::parse`] message if the variable is set but
    /// malformed (never silently ignored — a chaos run that quietly ran
    /// without faults would fake a passing result).
    pub fn from_env() -> Result<Option<Self>, String> {
        // soe-lint: allow(determinism-taint): SOE_FAULTS is an explicit operator chaos knob; the run records the plan verbatim and replays deterministically from it
        match std::env::var("SOE_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// One deterministic uniform draw in `[0, 1)` for `(key, attempt,
    /// salt)`. Salts keep the fault classes' draws independent.
    fn draw(&self, key: &str, attempt: u32, salt: u64) -> f64 {
        let mut h = fnv1a64(key.as_bytes());
        for chunk in [self.seed, u64::from(attempt), salt] {
            h ^= splitmix64(chunk.wrapping_add(h));
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // 53 high-quality bits -> [0, 1).
        (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The deterministic panic/stall decision for `key` at `attempt`.
    pub fn decide(&self, key: &str, attempt: u32) -> Fault {
        if self.panic_prob <= 0.0 && self.stall_prob <= 0.0 {
            return Fault::None;
        }
        if self.draw(key, attempt, 1) < self.panic_prob {
            Fault::Panic
        } else if self.draw(key, attempt, 2) < self.stall_prob {
            Fault::Stall(self.stall)
        } else {
            Fault::None
        }
    }

    /// Whether the journal write for `key` at `attempt` fails (`io:P`).
    pub fn decide_io(&self, key: &str, attempt: u32) -> bool {
        self.io_prob > 0.0 && self.draw(key, attempt, 3) < self.io_prob
    }

    /// Whether the incoming request `key` is lost before acceptance
    /// (`drop:P`). Drops have no retry, so no attempt number.
    pub fn decide_drop(&self, key: &str) -> bool {
        self.drop_prob > 0.0 && self.draw(key, 1, 4) < self.drop_prob
    }

    /// The slow-worker delay for `key` at `attempt`, if drawn (`slow:P`).
    pub fn decide_slow(&self, key: &str, attempt: u32) -> Option<Duration> {
        (self.slow_prob > 0.0 && self.draw(key, attempt, 5) < self.slow_prob).then_some(self.slow)
    }
}

fn parse_prob(value: &str) -> Result<f64, String> {
    let p = value
        .parse::<f64>()
        .map_err(|_| format!("SOE_FAULTS: bad probability {value:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("SOE_FAULTS: probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// splitmix64 finalizer — decorrelates the FNV lattice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Supervised execution
// ---------------------------------------------------------------------------

/// Supervisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseOptions {
    /// Concurrent jobs (managers); `1` still supervises but runs one job
    /// at a time.
    pub workers: usize,
    /// Wall-clock budget per attempt; `None` waits forever (no
    /// watchdog).
    pub timeout: Option<Duration>,
    /// Further attempts after the first failure (so `retries: 2` means
    /// at most 3 attempts) before the job is quarantined.
    pub retries: u32,
    /// Pause before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Deterministic fault injection, if enabled.
    pub faults: Option<FaultPlan>,
    /// Print per-completion progress lines to stderr.
    pub progress: bool,
}

impl SuperviseOptions {
    /// `workers` managers, progress on, no timeout, 2 retries with a
    /// 500 ms initial backoff, no fault injection.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(500),
            faults: None,
            progress: true,
        }
    }

    /// [`SuperviseOptions::new`] with progress output off (tests,
    /// library callers).
    pub fn quiet(workers: usize) -> Self {
        Self {
            progress: false,
            ..Self::new(workers)
        }
    }
}

/// How one job attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The job panicked (captured; the worker survived).
    Panicked,
    /// The job returned an error value (e.g. a `SimError`).
    Failed,
    /// The watchdog expired before the attempt produced a result.
    TimedOut,
}

/// One failed attempt of a supervised job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFailure {
    /// How the attempt failed.
    pub kind: FailureKind,
    /// 1-based attempt number.
    pub attempt: u32,
    /// The panic message, error value, or timeout description.
    pub message: String,
}

/// A job whose every attempt failed: excluded from the results, reported
/// in the failure manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantined {
    /// Submission index of the job.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Every failed attempt, in order.
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let last = self.failures.last();
        write!(
            f,
            "job #{} `{}` quarantined after {} attempt(s): {}",
            self.index,
            self.label,
            self.failures.len(),
            last.map_or("<no attempts>".to_string(), |l| format!(
                "{:?}: {}",
                l.kind, l.message
            ))
        )
    }
}

/// A run excluded from a batch without being attempted, because
/// something it depends on was quarantined (or the service layer
/// deterministically dropped it under fault injection).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedRun {
    /// The run's journal key (`pair/gcc:eon/F=1/2`, `req/c1-0004`).
    pub key: String,
    /// Why it could not run.
    pub reason: String,
}

/// Everything that kept a batch from completing: runs whose every
/// attempt failed, and runs skipped because a dependency failed.
/// Serialized next to the results so a partial batch is an explicit,
/// inspectable state rather than a silent one. Shared by the experiment
/// matrix (`soe-bench`) and the capacity-planning service
/// ([`serve`](crate::serve)).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureManifest {
    /// Runs quarantined after exhausting their retry budget.
    pub quarantined: Vec<Quarantined>,
    /// Runs never attempted (e.g. their single-thread reference failed).
    pub skipped: Vec<SkippedRun>,
}

impl FailureManifest {
    /// Whether the batch completed with nothing missing.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty() && self.skipped.is_empty()
    }
}

/// The outcome of a supervised batch: per-job results in submission
/// order (`None` where the job was quarantined) plus the quarantine
/// list.
#[derive(Debug)]
pub struct SuperviseReport<R> {
    /// Results in submission order; `None` marks a quarantined job.
    pub results: Vec<Option<R>>,
    /// Jobs whose every attempt failed.
    pub quarantined: Vec<Quarantined>,
}

impl<R> SuperviseReport<R> {
    /// Whether every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Unwraps a complete report into plain results.
    ///
    /// # Panics
    ///
    /// Panics (listing every quarantined job) if any job failed.
    pub fn expect_complete(self) -> Vec<R> {
        if !self.is_complete() {
            let lines: Vec<String> = self.quarantined.iter().map(ToString::to_string).collect();
            // soe-lint: allow(panic-macro): documented panicking accessor; callers wanting errors inspect the report
            panic!(
                "{} job(s) quarantined:\n  {}",
                lines.len(),
                lines.join("\n  ")
            );
        }
        self.results
            .into_iter()
            // soe-lint: allow(panic-unwrap): is_complete() above guarantees every slot is filled
            .map(|r| r.expect("complete report has every result"))
            .collect()
    }
}

/// Runs `jobs` under supervision: each attempt on its own watched
/// thread, retries with exponential backoff, persistent failures
/// quarantined. Results come back in submission order.
///
/// Unlike [`try_run_jobs`](crate::pool::try_run_jobs) the job function
/// returns `Result<R, String>`, so structured failures (a `SimError`,
/// say) are retried and reported without being funneled through panics;
/// panics are still captured.
///
/// `'static` bounds: a timed-out attempt's thread cannot be killed, only
/// *abandoned* — so attempt threads are detached and share the job list
/// and function via `Arc` rather than borrowing from the caller's stack.
pub fn supervise_jobs<P, R, F>(
    jobs: Vec<Job<P>>,
    opts: &SuperviseOptions,
    f: F,
) -> SuperviseReport<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    supervise_jobs_with(jobs, opts, f, |_, _| {})
}

/// [`supervise_jobs`] with a completion hook: `on_complete(index, &result)`
/// runs on the collector thread, in completion order, as each job
/// succeeds — the place to journal results durably while the matrix is
/// still running.
pub fn supervise_jobs_with<P, R, F>(
    jobs: Vec<Job<P>>,
    opts: &SuperviseOptions,
    f: F,
    mut on_complete: impl FnMut(usize, &R),
) -> SuperviseReport<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    let total = jobs.len();
    if total == 0 {
        return SuperviseReport {
            results: Vec::new(),
            quarantined: Vec::new(),
        };
    }
    let jobs: Arc<Vec<Job<P>>> = Arc::new(jobs);
    let f: Arc<F> = Arc::new(f);
    let workers = opts.workers.clamp(1, total);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let (tx, rx) = mpsc::channel::<(usize, Duration, Result<R, Quarantined>)>();

    let mut results: Vec<Option<R>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let mut quarantined: Vec<Quarantined> = Vec::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let jobs = Arc::clone(&jobs);
            let f = Arc::clone(&f);
            let opts = *opts;
            // Managers are scoped (always joinable: every wait is
            // bounded by recv_timeout); the attempt threads they spawn
            // are detached, because a hung attempt can only be
            // abandoned.
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= jobs.len() {
                    break;
                }
                // soe-lint: allow(wall-clock, determinism-taint): stall-watchdog/ETA wall-time; journal keys and result bytes never include it
                let start = Instant::now();
                let outcome = supervise_one(&jobs, index, &f, &opts);
                if tx.send((index, start.elapsed(), outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut progress = Progress::new(total, opts.progress);
        for (index, took, outcome) in rx {
            // soe-lint: allow(slice-index): workers only send indexes below jobs.len()
            progress.completed(&jobs[index].label, took);
            match outcome {
                Ok(r) => {
                    on_complete(index, &r);
                    // soe-lint: allow(slice-index): results was sized to jobs.len() above
                    results[index] = Some(r);
                }
                Err(q) => {
                    if opts.progress {
                        eprintln!("[supervise] {q}");
                    }
                    quarantined.push(q);
                }
            }
        }
    });

    quarantined.sort_by_key(|q| q.index);
    SuperviseReport {
        results,
        quarantined,
    }
}

/// Runs one job to completion or quarantine: attempts on detached
/// threads, each bounded by the watchdog timeout, with exponential
/// backoff between attempts.
fn supervise_one<P, R, F>(
    jobs: &Arc<Vec<Job<P>>>,
    index: usize,
    f: &Arc<F>,
    opts: &SuperviseOptions,
) -> Result<R, Quarantined>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    // soe-lint: allow(slice-index): supervise_jobs only passes indexes below jobs.len()
    let label = jobs[index].label.clone();
    let jobs = Arc::clone(jobs);
    let f = Arc::clone(f);
    supervise_call(
        &label,
        index,
        opts,
        // soe-lint: allow(slice-index): supervise_jobs only passes indexes below jobs.len()
        Arc::new(move || f(&jobs[index].payload)),
    )
}

/// Runs one supervised call to completion or quarantine: every attempt
/// on its own detached thread bounded by the watchdog timeout, with
/// exponential backoff between attempts and deterministic fault
/// injection keyed by `label`. The building block behind
/// [`supervise_jobs`], used directly by the [`serve`](crate::serve)
/// service layer for per-request supervision.
///
/// `index` only labels the resulting [`Quarantined`] record (submission
/// index in a batch, request sequence number in a service).
///
/// # Errors
///
/// [`Quarantined`] with the full per-attempt failure history once the
/// retry budget is exhausted.
pub fn supervise_call<R, F>(
    label: &str,
    index: usize,
    opts: &SuperviseOptions,
    f: Arc<F>,
) -> Result<R, Quarantined>
where
    R: Send + 'static,
    F: Fn() -> Result<R, String> + Send + Sync + 'static,
{
    let mut failures: Vec<JobFailure> = Vec::new();
    for attempt in 1..=opts.retries.saturating_add(1) {
        if attempt > 1 {
            // Exponential backoff: backoff, 2*backoff, 4*backoff, ...
            let pause = opts.backoff.saturating_mul(1u32 << (attempt - 2).min(16));
            std::thread::sleep(pause);
        }
        let fault = opts
            .faults
            .map_or(Fault::None, |plan| plan.decide(label, attempt));
        let slow = opts
            .faults
            .and_then(|plan| plan.decide_slow(label, attempt));
        let (tx, rx) = mpsc::channel::<Result<R, JobFailure>>();
        {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Fault::None => {}
                        // soe-lint: allow(panic-macro): deliberate fault injection for chaos testing; caught by the harness
                        Fault::Panic => panic!("injected fault: panic (attempt {attempt})"),
                        Fault::Stall(d) => std::thread::sleep(d),
                    }
                    if let Some(d) = slow {
                        // Slow-worker fault: added latency, not a hang.
                        std::thread::sleep(d);
                    }
                    f()
                }));
                let _ = tx.send(match outcome {
                    Ok(Ok(r)) => Ok(r),
                    Ok(Err(message)) => Err(JobFailure {
                        kind: FailureKind::Failed,
                        attempt,
                        message,
                    }),
                    Err(payload) => Err(JobFailure {
                        kind: FailureKind::Panicked,
                        attempt,
                        message: panic_message(&*payload),
                    }),
                });
            });
        }
        let received = match opts.timeout {
            Some(t) => rx.recv_timeout(t).map_err(|_| JobFailure {
                kind: FailureKind::TimedOut,
                attempt,
                message: format!("no result within {t:?}; attempt thread abandoned"),
            }),
            // A disconnected channel without a timeout means the attempt
            // thread died without sending — report rather than hang.
            None => rx.recv().map_err(|_| JobFailure {
                kind: FailureKind::Panicked,
                attempt,
                message: "attempt thread exited without a result".to_string(),
            }),
        };
        match received {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(failure)) | Err(failure) => failures.push(failure),
        }
    }
    Err(Quarantined {
        index,
        label: label.to_string(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("soe-supervise-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn journal_round_trips_and_resumes() {
        let path = tmp("roundtrip");
        let mut j = Journal::open(&path).unwrap();
        assert!(j.is_empty());
        j.append("single/swim", r#"{"ipc":0.5}"#).unwrap();
        j.append("pair/swim:eon/F=0", r#"{"x":1}"#).unwrap();
        j.append("single/swim", r#"{"ipc":0.75}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("single/swim"), Some(r#"{"ipc":0.75}"#));
        assert_eq!(j.get("pair/swim:eon/F=0"), Some(r#"{"x":1}"#));
        assert_eq!(j.recovery().dropped, 0);
    }

    #[test]
    fn journal_drops_torn_tail_and_compacts() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append("a", "1").unwrap();
        j.append("b", "2").unwrap();
        drop(j);
        // Simulate a crash mid-append: append half a line.
        let mut raw = std::fs::read(&path).unwrap();
        let full_len = raw.len();
        raw.extend_from_slice(b"0123456789abcdef c 3-but-the-line-is-t");
        atomic_write(&path, &raw).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.recovery().dropped, 1);
        assert_eq!(j.get("a"), Some("1"));
        // Compaction rewrote a clean file.
        assert_eq!(std::fs::read(&path).unwrap().len(), full_len);
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.recovery().dropped, 0);
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn journal_rejects_bit_flips() {
        let path = tmp("bitflip");
        let mut j = Journal::open(&path).unwrap();
        j.append("a", "payload-one").unwrap();
        j.append("b", "payload-two").unwrap();
        drop(j);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a bit inside the first record's payload.
        let pos = 20;
        raw[pos] ^= 0x01;
        atomic_write(&path, &raw).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.recovery().dropped, 1);
        assert_eq!(j.get("a"), None, "corrupt record must not surface");
        assert_eq!(j.get("b"), Some("payload-two"));
    }

    #[test]
    fn journal_append_rejects_separator_bytes() {
        let path = tmp("reject");
        let mut j = Journal::open(&path).unwrap();
        assert!(j.append("has space", "x").is_err());
        assert!(j.append("ok", "has\nnewline").is_err());
        assert!(j.append("", "x").is_err());
        j.append("ok", "fine").unwrap();
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = tmp("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter.
        let dir = path.parent().unwrap();
        assert_eq!(std::fs::read_dir(dir).unwrap().count(), 1);
    }

    #[test]
    fn fault_plan_parses_and_is_deterministic() {
        let plan = FaultPlan::parse("panic:0.25,stall:0.1,stall_ms:1234@99").unwrap();
        assert_eq!(plan.panic_prob, 0.25);
        assert_eq!(plan.stall_prob, 0.1);
        assert_eq!(plan.stall, Duration::from_millis(1234));
        assert_eq!(plan.seed, 99);
        for key in ["a", "b", "pair/swim:eon/F=1"] {
            for attempt in 1..4 {
                assert_eq!(plan.decide(key, attempt), plan.decide(key, attempt));
            }
        }
        // Different seeds must produce different decision patterns over
        // enough keys.
        let other = FaultPlan { seed: 100, ..plan };
        let pattern = |p: &FaultPlan| -> Vec<Fault> {
            (0..64).map(|i| p.decide(&format!("k{i}"), 1)).collect()
        };
        assert_ne!(pattern(&plan), pattern(&other));
        // Probabilities are roughly honored: panic:1.0 always panics.
        let always = FaultPlan::parse("panic:1.0").unwrap();
        assert_eq!(always.decide("anything", 1), Fault::Panic);
        let never = FaultPlan::parse("panic:0.0,stall:0.0").unwrap();
        assert_eq!(never.decide("anything", 1), Fault::None);
    }

    #[test]
    fn fault_plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic:1.5").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("explode:0.5").is_err());
        assert!(FaultPlan::parse("panic:0.5@notanumber").is_err());
        assert!(FaultPlan::parse("io:2.0").is_err());
        assert!(FaultPlan::parse("slow_ms:abc").is_err());
    }

    #[test]
    fn fault_plan_parses_service_layer_classes() {
        let plan = FaultPlan::parse("panic:0.1,io:0.5,drop:0.2,slow:0.3,slow_ms:77@5").unwrap();
        assert_eq!(plan.io_prob, 0.5);
        assert_eq!(plan.drop_prob, 0.2);
        assert_eq!(plan.slow_prob, 0.3);
        assert_eq!(plan.slow, Duration::from_millis(77));
        // Decisions are deterministic and independent per class.
        for key in ["req/a", "req/b"] {
            assert_eq!(plan.decide_io(key, 1), plan.decide_io(key, 1));
            assert_eq!(plan.decide_drop(key), plan.decide_drop(key));
            assert_eq!(plan.decide_slow(key, 1), plan.decide_slow(key, 1));
        }
        let always = FaultPlan::parse("io:1.0,drop:1.0,slow:1.0,slow_ms:9").unwrap();
        assert!(always.decide_io("k", 1));
        assert!(always.decide_drop("k"));
        assert_eq!(always.decide_slow("k", 1), Some(Duration::from_millis(9)));
        let never = FaultPlan::none(3);
        assert!(!never.decide_io("k", 1));
        assert!(!never.decide_drop("k"));
        assert_eq!(never.decide_slow("k", 1), None);
    }

    #[test]
    fn journal_append_retries_through_injected_io_faults() {
        let plan = FaultPlan::parse("io:0.5@11").unwrap();
        // Find a key whose first append attempt is injected to fail but
        // whose retry succeeds — pure plan logic, no seed hunting.
        let key = (0..10_000)
            .map(|i| format!("k{i}"))
            .find(|k| plan.decide_io(k, 1) && !plan.decide_io(k, 2))
            .expect("a transient-io key exists in 10k draws");
        let path = tmp("iofault");
        let mut j = Journal::open(&path).unwrap();
        j.set_faults(Some(plan));
        j.append(&key, "survived").unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.get(&key), Some("survived"));
    }

    #[test]
    fn journal_append_surfaces_persistent_io_faults() {
        let path = tmp("iofault-hard");
        let mut j = Journal::open(&path).unwrap();
        j.set_faults(Some(FaultPlan::parse("io:1.0@1").unwrap()));
        let err = j.append("doomed", "x").unwrap_err();
        assert!(err.to_string().contains("injected fault: io"), "{err}");
        // The record must not be visible in memory either.
        assert_eq!(j.get("doomed"), None);
        // Disarming restores normal appends.
        j.set_faults(None);
        j.append("doomed", "y").unwrap();
        assert_eq!(j.get("doomed"), Some("y"));
    }

    #[test]
    fn journal_iter_is_in_first_append_order() {
        let path = tmp("iterorder");
        let mut j = Journal::open(&path).unwrap();
        j.append("b", "1").unwrap();
        j.append("a", "2").unwrap();
        j.append("b", "3").unwrap();
        let got: Vec<(String, String)> = j
            .iter()
            .map(|(k, p)| (k.to_string(), p.to_string()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("b".to_string(), "3".to_string()),
                ("a".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn supervised_jobs_return_in_order() {
        let jobs: Vec<Job<u64>> = (0..16).map(|i| Job::new(format!("j{i}"), i)).collect();
        let report = supervise_jobs(jobs, &SuperviseOptions::quiet(4), |i| Ok(*i * 2));
        assert!(report.is_complete());
        assert_eq!(
            report.expect_complete(),
            (0..16).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let jobs = vec![Job::new("flaky", ())];
        let mut opts = SuperviseOptions::quiet(1);
        opts.retries = 2;
        opts.backoff = Duration::from_millis(1);
        let report = supervise_jobs(jobs, &opts, |_: &()| {
            if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(42u32)
            }
        });
        assert!(report.is_complete());
        assert_eq!(report.results[0], Some(42));
        assert_eq!(CALLS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn persistent_failure_is_quarantined_with_history() {
        let jobs = vec![Job::new("good", 1u32), Job::new("bad", 2u32)];
        let mut opts = SuperviseOptions::quiet(2);
        opts.retries = 1;
        opts.backoff = Duration::from_millis(1);
        let report = supervise_jobs(jobs, &opts, |i| {
            if *i == 2 {
                Err("always broken".to_string())
            } else {
                Ok(*i)
            }
        });
        assert!(!report.is_complete());
        assert_eq!(report.results[0], Some(1));
        assert_eq!(report.results[1], None);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.label, "bad");
        assert_eq!(q.failures.len(), 2, "initial attempt + 1 retry");
        assert!(q
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::Failed && f.message == "always broken"));
    }

    #[test]
    fn panicking_job_is_captured_and_quarantined() {
        let jobs = vec![Job::new("boom", ())];
        let mut opts = SuperviseOptions::quiet(1);
        opts.retries = 0;
        let report = supervise_jobs(jobs, &opts, |_: &()| -> Result<u32, String> {
            panic!("kapow");
        });
        let q = &report.quarantined[0];
        assert_eq!(q.failures[0].kind, FailureKind::Panicked);
        assert!(q.failures[0].message.contains("kapow"));
    }

    #[test]
    fn watchdog_abandons_a_hung_job_within_bounds() {
        let mut opts = SuperviseOptions::quiet(2);
        opts.timeout = Some(Duration::from_millis(50));
        opts.retries = 1;
        opts.backoff = Duration::from_millis(1);
        let jobs = vec![Job::new("hung", true), Job::new("fine", false)];
        let wall = Instant::now();
        let report = supervise_jobs(jobs, &opts, |hang: &bool| {
            if *hang {
                std::thread::sleep(Duration::from_secs(30));
            }
            Ok(7u32)
        });
        let elapsed = wall.elapsed();
        assert!(!report.is_complete());
        assert_eq!(report.results[1], Some(7));
        let q = &report.quarantined[0];
        assert_eq!(q.label, "hung");
        assert!(q.failures.iter().all(|f| f.kind == FailureKind::TimedOut));
        // 2 attempts x 50ms + 1ms backoff + slack: far below the 30s
        // sleep — the watchdog, not the job, bounded the wait.
        assert!(
            elapsed < Duration::from_secs(10),
            "watchdog failed to bound the wait: {elapsed:?}"
        );
    }

    #[test]
    fn injected_panics_quarantine_and_completion_hook_fires() {
        let jobs: Vec<Job<u32>> = (0..8).map(|i| Job::new(format!("j{i}"), i)).collect();
        let mut opts = SuperviseOptions::quiet(2);
        opts.retries = 0;
        opts.faults = Some(FaultPlan::parse("panic:1.0@7").unwrap());
        let completed = std::sync::Mutex::new(Vec::new());
        let report = supervise_jobs_with(
            jobs,
            &opts,
            |i| Ok(*i),
            |index, _r| completed.lock().unwrap().push(index),
        );
        assert_eq!(report.quarantined.len(), 8, "panic:1.0 fails everything");
        assert!(completed.lock().unwrap().is_empty());
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.failures[0].message.contains("injected fault")));
    }
}
