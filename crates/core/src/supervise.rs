//! Crash-safe experiment supervision: journaled resume, per-job
//! watchdogs, retry with backoff, quarantine, and deterministic fault
//! injection.
//!
//! The [`pool`](crate::pool) module dispatches the experiment matrix
//! across cores; this module keeps a long matrix *alive*. It applies the
//! same DRR-style discipline the paper applies to threads to our own
//! jobs:
//!
//! * **Bounded time** — every job attempt runs on its own thread and is
//!   abandoned after a wall-clock timeout ([`SuperviseOptions::timeout`]);
//!   a hung run can no longer hold the whole matrix hostage. Inside the
//!   simulator, the forward-progress watchdog
//!   (`Machine::try_run_cycles` + `SimError::Stalled`) catches runs that
//!   tick without retiring.
//! * **Guaranteed forward progress** — panicked, failed or timed-out
//!   jobs are retried with exponential backoff
//!   ([`SuperviseOptions::retries`], [`SuperviseOptions::backoff`]) and,
//!   if they keep failing, **quarantined**: the matrix completes with
//!   partial results plus a failure manifest instead of aborting.
//! * **Durability** — the [`Journal`] is an append-only, checksummed
//!   record of completed runs. A killed process loses at most the
//!   in-flight runs; reopening the journal recovers every intact record
//!   (dropping a torn tail or bit-flipped lines) so `--resume` skips
//!   completed work and reproduces bit-identical output.
//! * **Testability** — the [`FaultPlan`] injects panics and stalls
//!   deterministically from a seed (`SOE_FAULTS=panic:0.05,stall:0.02@7`),
//!   so all of the above is exercised in tests and CI chaos runs, not
//!   just during real incidents.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::pool::{panic_message, Job, Progress};

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a temporary
/// file in the same directory (same filesystem, so the rename cannot
/// cross devices), is synced, and is renamed over the target. A crash at
/// any point leaves either the old file or the new one — never a
/// half-written mix.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename, tagged with the path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("atomic_write: {} has no file name", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{name}.tmp{}", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| std::io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// The run journal
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit — a small, dependency-free checksum for journal
/// records (corruption detection, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// Intact records recovered (later duplicates of a key win).
    pub kept: usize,
    /// Corrupt lines dropped: a torn tail from a crash mid-append, or
    /// bit-flipped lines failing their checksum.
    pub dropped: usize,
}

/// An append-only, checksummed record of completed runs.
///
/// Each record is one line, `<fnv1a64 hex> <key> <payload>\n`, where the
/// checksum covers `<key> <payload>`. Keys must not contain spaces or
/// newlines; payloads must not contain newlines (JSON fits both).
/// Appends are a single `write_all` + flush + sync, so a crash can only
/// tear the *last* line; [`Journal::open`] drops any line that fails to
/// parse or checksum and — if anything was dropped — compacts the file
/// atomically so the corruption never accumulates.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    // BTreeMap so any future iteration over entries is ordered; replay
    // order is carried separately by `order` (insertion sequence).
    entries: BTreeMap<String, String>,
    order: Vec<String>,
    recovery: JournalRecovery,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovering every
    /// intact record.
    ///
    /// # Errors
    ///
    /// Any I/O error from reading or (when compaction is needed)
    /// rewriting the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let raw = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("reading journal {}: {e}", path.display()),
                ));
            }
        };
        let mut entries = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut recovery = JournalRecovery::default();
        for line in raw.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some((key, payload)) => {
                    recovery.kept += 1;
                    if entries.insert(key.clone(), payload).is_none() {
                        order.push(key);
                    }
                }
                None => recovery.dropped += 1,
            }
        }
        if recovery.dropped > 0 {
            // Compact: rewrite only the intact records, atomically, so
            // the next crash-recovery starts from a clean file.
            let mut clean = Vec::new();
            for key in &order {
                if let Some(payload) = entries.get(key) {
                    Self::encode_line(&mut clean, key, payload);
                }
            }
            atomic_write(&path, &clean)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| {
                std::io::Error::new(e.kind(), format!("opening journal {}: {e}", path.display()))
            })?;
        Ok(Self {
            path,
            file,
            entries,
            order,
            recovery,
        })
    }

    fn parse_line(line: &[u8]) -> Option<(String, String)> {
        let line = std::str::from_utf8(line).ok()?;
        let (hex, rest) = line.split_once(' ')?;
        if hex.len() != 16 {
            return None;
        }
        let sum = u64::from_str_radix(hex, 16).ok()?;
        if fnv1a64(rest.as_bytes()) != sum {
            return None;
        }
        let (key, payload) = rest.split_once(' ')?;
        Some((key.to_string(), payload.to_string()))
    }

    fn encode_line(out: &mut Vec<u8>, key: &str, payload: &str) {
        let body = format!("{key} {payload}");
        out.extend_from_slice(format!("{:016x} {body}\n", fnv1a64(body.as_bytes())).as_bytes());
    }

    /// What recovery found when this journal was opened.
    pub fn recovery(&self) -> JournalRecovery {
        self.recovery
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The payload recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Appends (or overwrites) a record durably: the line is written in
    /// one `write_all`, flushed, and synced before this returns.
    ///
    /// # Errors
    ///
    /// Any I/O error from the append; also if `key` contains a space or
    /// either part contains a newline (which would tear the line format).
    pub fn append(&mut self, key: &str, payload: &str) -> std::io::Result<()> {
        if key.is_empty() || key.contains(' ') || key.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal key {key:?} must be non-empty and contain no space/newline"),
            ));
        }
        if payload.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("journal payload for {key} must not contain newlines"),
            ));
        }
        let mut line = Vec::new();
        Self::encode_line(&mut line, key, payload);
        self.file.write_all(&line)?;
        self.file.flush()?;
        self.file.sync_data()?;
        if self
            .entries
            .insert(key.to_string(), payload.to_string())
            .is_none()
        {
            self.order.push(key.to_string());
        }
        Ok(())
    }

    /// Truncates the journal to empty (a fresh, non-resumed matrix).
    ///
    /// # Errors
    ///
    /// Any I/O error from the truncation.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.entries.clear();
        self.order.clear();
        self.recovery = JournalRecovery::default();
        Ok(())
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// A fault decision for one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Run the job normally.
    None,
    /// Panic before the job body runs.
    Panic,
    /// Sleep for the given duration before the job body runs (long
    /// enough, relative to the watchdog timeout, to look hung).
    Stall(Duration),
}

/// Seed-driven fault injection: every `(job key, attempt)` pair maps
/// deterministically to a fault decision, so a chaos run is exactly
/// reproducible and a retry of the same job may deterministically
/// succeed.
///
/// Spec format (the `SOE_FAULTS` environment variable):
/// `panic:0.05,stall:0.02,stall_ms:4000@seed` — panic probability, stall
/// probability, stall duration in milliseconds (default 2000), and the
/// seed after `@` (default 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability an attempt panics.
    pub panic_prob: f64,
    /// Probability an attempt stalls (checked after the panic draw).
    pub stall_prob: f64,
    /// How long a stalled attempt sleeps.
    pub stall: Duration,
    /// Seed mixed into every decision.
    pub seed: u64,
}

impl FaultPlan {
    /// Parses a `panic:P,stall:P[,stall_ms:N][@seed]` spec.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (body, seed) = match spec.rsplit_once('@') {
            Some((body, seed)) => (
                body,
                seed.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("SOE_FAULTS: bad seed {seed:?}"))?,
            ),
            None => (spec, 0),
        };
        let mut plan = Self {
            panic_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(2_000),
            seed,
        };
        for entry in body.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("SOE_FAULTS: entry {entry:?} is not name:value"))?;
            let value = value.trim();
            match name.trim() {
                "panic" => plan.panic_prob = parse_prob(value)?,
                "stall" => plan.stall_prob = parse_prob(value)?,
                "stall_ms" => {
                    plan.stall = Duration::from_millis(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("SOE_FAULTS: bad stall_ms {value:?}"))?,
                    );
                }
                other => return Err(format!("SOE_FAULTS: unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `SOE_FAULTS` environment variable.
    ///
    /// # Errors
    ///
    /// The [`FaultPlan::parse`] message if the variable is set but
    /// malformed (never silently ignored — a chaos run that quietly ran
    /// without faults would fake a passing result).
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("SOE_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The deterministic fault decision for `key` at `attempt`.
    pub fn decide(&self, key: &str, attempt: u32) -> Fault {
        if self.panic_prob <= 0.0 && self.stall_prob <= 0.0 {
            return Fault::None;
        }
        let draw = |salt: u64| -> f64 {
            let mut h = fnv1a64(key.as_bytes());
            for chunk in [self.seed, u64::from(attempt), salt] {
                h ^= splitmix64(chunk.wrapping_add(h));
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // 53 high-quality bits -> [0, 1).
            (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64
        };
        if draw(1) < self.panic_prob {
            Fault::Panic
        } else if draw(2) < self.stall_prob {
            Fault::Stall(self.stall)
        } else {
            Fault::None
        }
    }
}

fn parse_prob(value: &str) -> Result<f64, String> {
    let p = value
        .parse::<f64>()
        .map_err(|_| format!("SOE_FAULTS: bad probability {value:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("SOE_FAULTS: probability {p} outside [0, 1]"));
    }
    Ok(p)
}

/// splitmix64 finalizer — decorrelates the FNV lattice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Supervised execution
// ---------------------------------------------------------------------------

/// Supervisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseOptions {
    /// Concurrent jobs (managers); `1` still supervises but runs one job
    /// at a time.
    pub workers: usize,
    /// Wall-clock budget per attempt; `None` waits forever (no
    /// watchdog).
    pub timeout: Option<Duration>,
    /// Further attempts after the first failure (so `retries: 2` means
    /// at most 3 attempts) before the job is quarantined.
    pub retries: u32,
    /// Pause before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Deterministic fault injection, if enabled.
    pub faults: Option<FaultPlan>,
    /// Print per-completion progress lines to stderr.
    pub progress: bool,
}

impl SuperviseOptions {
    /// `workers` managers, progress on, no timeout, 2 retries with a
    /// 500 ms initial backoff, no fault injection.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            timeout: None,
            retries: 2,
            backoff: Duration::from_millis(500),
            faults: None,
            progress: true,
        }
    }

    /// [`SuperviseOptions::new`] with progress output off (tests,
    /// library callers).
    pub fn quiet(workers: usize) -> Self {
        Self {
            progress: false,
            ..Self::new(workers)
        }
    }
}

/// How one job attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The job panicked (captured; the worker survived).
    Panicked,
    /// The job returned an error value (e.g. a `SimError`).
    Failed,
    /// The watchdog expired before the attempt produced a result.
    TimedOut,
}

/// One failed attempt of a supervised job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFailure {
    /// How the attempt failed.
    pub kind: FailureKind,
    /// 1-based attempt number.
    pub attempt: u32,
    /// The panic message, error value, or timeout description.
    pub message: String,
}

/// A job whose every attempt failed: excluded from the results, reported
/// in the failure manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantined {
    /// Submission index of the job.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Every failed attempt, in order.
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let last = self.failures.last();
        write!(
            f,
            "job #{} `{}` quarantined after {} attempt(s): {}",
            self.index,
            self.label,
            self.failures.len(),
            last.map_or("<no attempts>".to_string(), |l| format!(
                "{:?}: {}",
                l.kind, l.message
            ))
        )
    }
}

/// The outcome of a supervised batch: per-job results in submission
/// order (`None` where the job was quarantined) plus the quarantine
/// list.
#[derive(Debug)]
pub struct SuperviseReport<R> {
    /// Results in submission order; `None` marks a quarantined job.
    pub results: Vec<Option<R>>,
    /// Jobs whose every attempt failed.
    pub quarantined: Vec<Quarantined>,
}

impl<R> SuperviseReport<R> {
    /// Whether every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Unwraps a complete report into plain results.
    ///
    /// # Panics
    ///
    /// Panics (listing every quarantined job) if any job failed.
    pub fn expect_complete(self) -> Vec<R> {
        if !self.is_complete() {
            let lines: Vec<String> = self.quarantined.iter().map(ToString::to_string).collect();
            // soe-lint: allow(panic-macro): documented panicking accessor; callers wanting errors inspect the report
            panic!(
                "{} job(s) quarantined:\n  {}",
                lines.len(),
                lines.join("\n  ")
            );
        }
        self.results
            .into_iter()
            // soe-lint: allow(panic-unwrap): is_complete() above guarantees every slot is filled
            .map(|r| r.expect("complete report has every result"))
            .collect()
    }
}

/// Runs `jobs` under supervision: each attempt on its own watched
/// thread, retries with exponential backoff, persistent failures
/// quarantined. Results come back in submission order.
///
/// Unlike [`try_run_jobs`](crate::pool::try_run_jobs) the job function
/// returns `Result<R, String>`, so structured failures (a `SimError`,
/// say) are retried and reported without being funneled through panics;
/// panics are still captured.
///
/// `'static` bounds: a timed-out attempt's thread cannot be killed, only
/// *abandoned* — so attempt threads are detached and share the job list
/// and function via `Arc` rather than borrowing from the caller's stack.
pub fn supervise_jobs<P, R, F>(
    jobs: Vec<Job<P>>,
    opts: &SuperviseOptions,
    f: F,
) -> SuperviseReport<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    supervise_jobs_with(jobs, opts, f, |_, _| {})
}

/// [`supervise_jobs`] with a completion hook: `on_complete(index, &result)`
/// runs on the collector thread, in completion order, as each job
/// succeeds — the place to journal results durably while the matrix is
/// still running.
pub fn supervise_jobs_with<P, R, F>(
    jobs: Vec<Job<P>>,
    opts: &SuperviseOptions,
    f: F,
    mut on_complete: impl FnMut(usize, &R),
) -> SuperviseReport<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    let total = jobs.len();
    if total == 0 {
        return SuperviseReport {
            results: Vec::new(),
            quarantined: Vec::new(),
        };
    }
    let jobs: Arc<Vec<Job<P>>> = Arc::new(jobs);
    let f: Arc<F> = Arc::new(f);
    let workers = opts.workers.clamp(1, total);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let (tx, rx) = mpsc::channel::<(usize, Duration, Result<R, Quarantined>)>();

    let mut results: Vec<Option<R>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let mut quarantined: Vec<Quarantined> = Vec::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let jobs = Arc::clone(&jobs);
            let f = Arc::clone(&f);
            let opts = *opts;
            // Managers are scoped (always joinable: every wait is
            // bounded by recv_timeout); the attempt threads they spawn
            // are detached, because a hung attempt can only be
            // abandoned.
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= jobs.len() {
                    break;
                }
                // soe-lint: allow(wall-clock): host wall-time for the stall watchdog and ETA, never simulated state
                let start = Instant::now();
                let outcome = supervise_one(&jobs, index, &f, &opts);
                if tx.send((index, start.elapsed(), outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut progress = Progress::new(total, opts.progress);
        for (index, took, outcome) in rx {
            // soe-lint: allow(slice-index): workers only send indexes below jobs.len()
            progress.completed(&jobs[index].label, took);
            match outcome {
                Ok(r) => {
                    on_complete(index, &r);
                    // soe-lint: allow(slice-index): results was sized to jobs.len() above
                    results[index] = Some(r);
                }
                Err(q) => {
                    if opts.progress {
                        eprintln!("[supervise] {q}");
                    }
                    quarantined.push(q);
                }
            }
        }
    });

    quarantined.sort_by_key(|q| q.index);
    SuperviseReport {
        results,
        quarantined,
    }
}

/// Runs one job to completion or quarantine: attempts on detached
/// threads, each bounded by the watchdog timeout, with exponential
/// backoff between attempts.
fn supervise_one<P, R, F>(
    jobs: &Arc<Vec<Job<P>>>,
    index: usize,
    f: &Arc<F>,
    opts: &SuperviseOptions,
) -> Result<R, Quarantined>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    // soe-lint: allow(slice-index): supervise_jobs only passes indexes below jobs.len()
    let label = jobs[index].label.clone();
    let mut failures: Vec<JobFailure> = Vec::new();
    for attempt in 1..=opts.retries.saturating_add(1) {
        if attempt > 1 {
            // Exponential backoff: backoff, 2*backoff, 4*backoff, ...
            let pause = opts.backoff.saturating_mul(1u32 << (attempt - 2).min(16));
            std::thread::sleep(pause);
        }
        let fault = opts
            .faults
            .map_or(Fault::None, |plan| plan.decide(&label, attempt));
        let (tx, rx) = mpsc::channel::<Result<R, JobFailure>>();
        {
            let jobs = Arc::clone(jobs);
            let f = Arc::clone(f);
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Fault::None => {}
                        // soe-lint: allow(panic-macro): deliberate fault injection for chaos testing; caught by the harness
                        Fault::Panic => panic!("injected fault: panic (attempt {attempt})"),
                        Fault::Stall(d) => std::thread::sleep(d),
                    }
                    // soe-lint: allow(slice-index): supervise_jobs only passes indexes below jobs.len()
                    f(&jobs[index].payload)
                }));
                let _ = tx.send(match outcome {
                    Ok(Ok(r)) => Ok(r),
                    Ok(Err(message)) => Err(JobFailure {
                        kind: FailureKind::Failed,
                        attempt,
                        message,
                    }),
                    Err(payload) => Err(JobFailure {
                        kind: FailureKind::Panicked,
                        attempt,
                        message: panic_message(&*payload),
                    }),
                });
            });
        }
        let received = match opts.timeout {
            Some(t) => rx.recv_timeout(t).map_err(|_| JobFailure {
                kind: FailureKind::TimedOut,
                attempt,
                message: format!("no result within {t:?}; attempt thread abandoned"),
            }),
            // A disconnected channel without a timeout means the attempt
            // thread died without sending — report rather than hang.
            None => rx.recv().map_err(|_| JobFailure {
                kind: FailureKind::Panicked,
                attempt,
                message: "attempt thread exited without a result".to_string(),
            }),
        };
        match received {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(failure)) | Err(failure) => failures.push(failure),
        }
    }
    Err(Quarantined {
        index,
        label,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("soe-supervise-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn journal_round_trips_and_resumes() {
        let path = tmp("roundtrip");
        let mut j = Journal::open(&path).unwrap();
        assert!(j.is_empty());
        j.append("single/swim", r#"{"ipc":0.5}"#).unwrap();
        j.append("pair/swim:eon/F=0", r#"{"x":1}"#).unwrap();
        j.append("single/swim", r#"{"ipc":0.75}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("single/swim"), Some(r#"{"ipc":0.75}"#));
        assert_eq!(j.get("pair/swim:eon/F=0"), Some(r#"{"x":1}"#));
        assert_eq!(j.recovery().dropped, 0);
    }

    #[test]
    fn journal_drops_torn_tail_and_compacts() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append("a", "1").unwrap();
        j.append("b", "2").unwrap();
        drop(j);
        // Simulate a crash mid-append: append half a line.
        let mut raw = std::fs::read(&path).unwrap();
        let full_len = raw.len();
        raw.extend_from_slice(b"0123456789abcdef c 3-but-the-line-is-t");
        atomic_write(&path, &raw).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.recovery().dropped, 1);
        assert_eq!(j.get("a"), Some("1"));
        // Compaction rewrote a clean file.
        assert_eq!(std::fs::read(&path).unwrap().len(), full_len);
        let j2 = Journal::open(&path).unwrap();
        assert_eq!(j2.recovery().dropped, 0);
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn journal_rejects_bit_flips() {
        let path = tmp("bitflip");
        let mut j = Journal::open(&path).unwrap();
        j.append("a", "payload-one").unwrap();
        j.append("b", "payload-two").unwrap();
        drop(j);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a bit inside the first record's payload.
        let pos = 20;
        raw[pos] ^= 0x01;
        atomic_write(&path, &raw).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.recovery().dropped, 1);
        assert_eq!(j.get("a"), None, "corrupt record must not surface");
        assert_eq!(j.get("b"), Some("payload-two"));
    }

    #[test]
    fn journal_append_rejects_separator_bytes() {
        let path = tmp("reject");
        let mut j = Journal::open(&path).unwrap();
        assert!(j.append("has space", "x").is_err());
        assert!(j.append("ok", "has\nnewline").is_err());
        assert!(j.append("", "x").is_err());
        j.append("ok", "fine").unwrap();
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = tmp("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp litter.
        let dir = path.parent().unwrap();
        assert_eq!(std::fs::read_dir(dir).unwrap().count(), 1);
    }

    #[test]
    fn fault_plan_parses_and_is_deterministic() {
        let plan = FaultPlan::parse("panic:0.25,stall:0.1,stall_ms:1234@99").unwrap();
        assert_eq!(plan.panic_prob, 0.25);
        assert_eq!(plan.stall_prob, 0.1);
        assert_eq!(plan.stall, Duration::from_millis(1234));
        assert_eq!(plan.seed, 99);
        for key in ["a", "b", "pair/swim:eon/F=1"] {
            for attempt in 1..4 {
                assert_eq!(plan.decide(key, attempt), plan.decide(key, attempt));
            }
        }
        // Different seeds must produce different decision patterns over
        // enough keys.
        let other = FaultPlan { seed: 100, ..plan };
        let pattern = |p: &FaultPlan| -> Vec<Fault> {
            (0..64).map(|i| p.decide(&format!("k{i}"), 1)).collect()
        };
        assert_ne!(pattern(&plan), pattern(&other));
        // Probabilities are roughly honored: panic:1.0 always panics.
        let always = FaultPlan::parse("panic:1.0").unwrap();
        assert_eq!(always.decide("anything", 1), Fault::Panic);
        let never = FaultPlan::parse("panic:0.0,stall:0.0").unwrap();
        assert_eq!(never.decide("anything", 1), Fault::None);
    }

    #[test]
    fn fault_plan_rejects_malformed_specs() {
        assert!(FaultPlan::parse("panic:1.5").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("explode:0.5").is_err());
        assert!(FaultPlan::parse("panic:0.5@notanumber").is_err());
    }

    #[test]
    fn supervised_jobs_return_in_order() {
        let jobs: Vec<Job<u64>> = (0..16).map(|i| Job::new(format!("j{i}"), i)).collect();
        let report = supervise_jobs(jobs, &SuperviseOptions::quiet(4), |i| Ok(*i * 2));
        assert!(report.is_complete());
        assert_eq!(
            report.expect_complete(),
            (0..16).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retry_recovers_a_flaky_job() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let jobs = vec![Job::new("flaky", ())];
        let mut opts = SuperviseOptions::quiet(1);
        opts.retries = 2;
        opts.backoff = Duration::from_millis(1);
        let report = supervise_jobs(jobs, &opts, |_: &()| {
            if CALLS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(42u32)
            }
        });
        assert!(report.is_complete());
        assert_eq!(report.results[0], Some(42));
        assert_eq!(CALLS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn persistent_failure_is_quarantined_with_history() {
        let jobs = vec![Job::new("good", 1u32), Job::new("bad", 2u32)];
        let mut opts = SuperviseOptions::quiet(2);
        opts.retries = 1;
        opts.backoff = Duration::from_millis(1);
        let report = supervise_jobs(jobs, &opts, |i| {
            if *i == 2 {
                Err("always broken".to_string())
            } else {
                Ok(*i)
            }
        });
        assert!(!report.is_complete());
        assert_eq!(report.results[0], Some(1));
        assert_eq!(report.results[1], None);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.label, "bad");
        assert_eq!(q.failures.len(), 2, "initial attempt + 1 retry");
        assert!(q
            .failures
            .iter()
            .all(|f| f.kind == FailureKind::Failed && f.message == "always broken"));
    }

    #[test]
    fn panicking_job_is_captured_and_quarantined() {
        let jobs = vec![Job::new("boom", ())];
        let mut opts = SuperviseOptions::quiet(1);
        opts.retries = 0;
        let report = supervise_jobs(jobs, &opts, |_: &()| -> Result<u32, String> {
            panic!("kapow");
        });
        let q = &report.quarantined[0];
        assert_eq!(q.failures[0].kind, FailureKind::Panicked);
        assert!(q.failures[0].message.contains("kapow"));
    }

    #[test]
    fn watchdog_abandons_a_hung_job_within_bounds() {
        let mut opts = SuperviseOptions::quiet(2);
        opts.timeout = Some(Duration::from_millis(50));
        opts.retries = 1;
        opts.backoff = Duration::from_millis(1);
        let jobs = vec![Job::new("hung", true), Job::new("fine", false)];
        let wall = Instant::now();
        let report = supervise_jobs(jobs, &opts, |hang: &bool| {
            if *hang {
                std::thread::sleep(Duration::from_secs(30));
            }
            Ok(7u32)
        });
        let elapsed = wall.elapsed();
        assert!(!report.is_complete());
        assert_eq!(report.results[1], Some(7));
        let q = &report.quarantined[0];
        assert_eq!(q.label, "hung");
        assert!(q.failures.iter().all(|f| f.kind == FailureKind::TimedOut));
        // 2 attempts x 50ms + 1ms backoff + slack: far below the 30s
        // sleep — the watchdog, not the job, bounded the wait.
        assert!(
            elapsed < Duration::from_secs(10),
            "watchdog failed to bound the wait: {elapsed:?}"
        );
    }

    #[test]
    fn injected_panics_quarantine_and_completion_hook_fires() {
        let jobs: Vec<Job<u32>> = (0..8).map(|i| Job::new(format!("j{i}"), i)).collect();
        let mut opts = SuperviseOptions::quiet(2);
        opts.retries = 0;
        opts.faults = Some(FaultPlan::parse("panic:1.0@7").unwrap());
        let completed = std::sync::Mutex::new(Vec::new());
        let report = supervise_jobs_with(
            jobs,
            &opts,
            |i| Ok(*i),
            |index, _r| completed.lock().unwrap().push(index),
        );
        assert_eq!(report.quarantined.len(), 8, "panic:1.0 fails everything");
        assert!(completed.lock().unwrap().is_empty());
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.failures[0].message.contains("injected fault")));
    }
}
