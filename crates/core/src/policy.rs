//! The paper's switch policies: the fairness-enforcement mechanism and
//! the Section 6 time-slicing baseline.

use soe_model::weighted::Weights;
use soe_model::FairnessLevel;
use soe_sim::obs::{EventKind, SharedTracer};
use soe_sim::{Cycle, SwitchDecision, SwitchPolicy, SwitchReason, ThreadId};

use crate::counters::HwCounters;
use crate::deficit::DeficitCounter;
use crate::estimator::{Estimator, WindowRecord};

/// How the mechanism obtains the event (miss) latency used in Eq 9/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissLatencyMode {
    /// Use the configured `miss_lat` as a predefined parameter — the
    /// paper's evaluation setting (300 cycles).
    #[default]
    Fixed,
    /// Track the observed exposed latency of switch-causing events with
    /// an exponential moving average — Section 6's proposal for events
    /// whose latency is variable or hard to predict (e.g. L1 misses).
    Measured,
}

/// Configuration of the fairness-enforcement mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessConfig {
    /// Target fairness `F` (0 disables enforcement but keeps estimation).
    pub target: FairnessLevel,
    /// Recalculation period Δ in cycles (the paper uses 250 000).
    pub delta: u64,
    /// Maximum cycles a thread may hold the core before being forced out
    /// (the paper uses 50 000 — less than Δ/N so every thread runs in
    /// every window).
    pub max_cycles_quota: u64,
    /// Average memory access latency used in Eq 9/13 (the initial value
    /// when `miss_lat_mode` is [`MissLatencyMode::Measured`]).
    pub miss_lat: f64,
    /// Whether the miss latency is a fixed parameter or measured online.
    pub miss_lat_mode: MissLatencyMode,
    /// Deficit leftover cap, as a multiple of the quota.
    pub deficit_cap: f64,
    /// Stabilizing quota floor: a forced round is never shorter than this
    /// many cycles' worth of instructions. Guards against the
    /// estimation-feedback instability the paper notes under strict
    /// enforcement (Section 6); 0 disables the floor.
    pub min_quota_cycles: u64,
    /// Whether to record per-window history (Figure 5 time series).
    pub record_history: bool,
}

impl FairnessConfig {
    /// The paper's parameters at the given target fairness.
    pub fn paper(target: FairnessLevel) -> Self {
        Self {
            target,
            delta: 250_000,
            max_cycles_quota: 50_000,
            miss_lat: 300.0,
            miss_lat_mode: MissLatencyMode::Fixed,
            deficit_cap: 2.0,
            min_quota_cycles: 600,
            record_history: true,
        }
    }

    /// Validates the configuration, returning a descriptive error instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Fails if Δ or the cycle quota is zero, or the quota is not below
    /// Δ (every thread must get a chance to run within each window).
    pub fn check(&self, threads: usize) -> Result<(), soe_sim::ConfigError> {
        let fail = |msg: String| Err(soe_sim::ConfigError(msg));
        if self.delta == 0 {
            return fail("delta must be positive".into());
        }
        if self.max_cycles_quota == 0 {
            return fail("cycle quota must be positive".into());
        }
        if self.max_cycles_quota as u128 * threads as u128 > self.delta as u128 {
            return fail(format!(
                "cycle quota must be at most delta / threads so every thread \
                 runs within each window (quota {} * {} threads > delta {})",
                self.max_cycles_quota, threads, self.delta
            ));
        }
        if self.miss_lat <= 0.0 {
            return fail("miss latency must be positive".into());
        }
        if self.deficit_cap < 1.0 {
            return fail(format!(
                "deficit cap must be at least 1.0 quota (got {}); a smaller \
                 cap forgives deficit faster than it accrues",
                self.deficit_cap
            ));
        }
        // No invariant to enforce: every FairnessLevel target is a legal
        // enforcement setting (0 disables), both latency modes are valid,
        // a zero quota floor disables the stabilizer, and history
        // recording only affects memory use.
        let _ = (
            self.target,
            self.miss_lat_mode,
            self.min_quota_cycles,
            self.record_history,
        );
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`FairnessConfig::check`] message on any invalid
    /// parameter.
    pub fn validate(&self, threads: usize) {
        if let Err(e) = self.check(threads) {
            // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use check()
            panic!("{e}");
        }
    }
}

/// The paper's fairness-enforcement mechanism (Sections 2–3):
///
/// 1. three hardware counters per thread ([`HwCounters`]),
/// 2. every Δ cycles, estimate each thread's stand-alone `IPC_ST`
///    (Eq 11–13) and recompute the `IPSw_j` quotas (Eq 9),
/// 3. enforce the quotas with per-thread deficit counters
///    ([`DeficitCounter`]),
/// 4. switch on last-level-miss stalls as plain SOE does, and
/// 5. force a switch when a thread exceeds the maximum cycles quota
///    (guaranteeing every thread runs — and is measured — each window).
///
/// With `target = F = 0` the policy never forces switches and behaves
/// exactly like event-only SOE while still estimating (useful for the
/// F = 0 rows of every figure).
#[derive(Debug)]
pub struct FairnessPolicy {
    cfg: FairnessConfig,
    counters: Vec<HwCounters>,
    deficits: Vec<DeficitCounter>,
    estimator: Estimator,
    switch_in_at: Cycle,
    forced_by_deficit: u64,
    forced_by_cycle_quota: u64,
    /// EWMA of observed exposed event latencies (measured mode).
    measured_lat: f64,
    /// Optional per-thread service weights (weighted-fairness extension;
    /// `None` = the paper's uniform definition).
    weights: Option<Weights>,
    /// Optional cycle-level event recorder for the mechanism's own
    /// events (estimator updates, deficit grants/forces, quota expiry).
    tracer: Option<SharedTracer>,
    name: String,
}

impl FairnessPolicy {
    /// Creates the mechanism for `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the configuration is invalid.
    pub fn new(threads: usize, cfg: FairnessConfig) -> Self {
        cfg.validate(threads);
        let mut estimator = Estimator::new(threads, cfg.delta, cfg.miss_lat, cfg.record_history);
        estimator.set_min_quota_cycles(cfg.min_quota_cycles as f64);
        Self {
            counters: vec![HwCounters::new(); threads],
            deficits: vec![DeficitCounter::new(cfg.deficit_cap); threads],
            estimator,
            switch_in_at: 0,
            forced_by_deficit: 0,
            forced_by_cycle_quota: 0,
            measured_lat: cfg.miss_lat,
            weights: None,
            tracer: None,
            name: format!("fairness({})", cfg.target),
            cfg,
        }
    }

    /// Attaches a cycle-level event recorder (builder style); share the
    /// same tracer with [`soe_sim::Machine::attach_tracer`] so mechanism
    /// events interleave with the machine's switch and miss events.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Sets per-thread service weights (builder style): speedups are
    /// balanced proportionally to the weights instead of equally.
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the thread count.
    pub fn with_weights(mut self, weights: Weights) -> Self {
        assert_eq!(weights.len(), self.counters.len(), "one weight per thread");
        self.name = format!("fairness({},weighted)", self.cfg.target);
        self.weights = Some(weights);
        self
    }

    /// The paper-parameter mechanism at target `f`.
    pub fn paper(threads: usize, f: FairnessLevel) -> Self {
        Self::new(threads, FairnessConfig::paper(f))
    }

    /// The configuration.
    pub fn config(&self) -> &FairnessConfig {
        &self.cfg
    }

    /// Recorded Δ-window history.
    pub fn records(&self) -> &[WindowRecord] {
        self.estimator.records()
    }

    /// Discards recorded history (after warm-up).
    pub fn clear_records(&mut self) {
        self.estimator.clear_records();
    }

    /// Switches forced by deficit exhaustion (fairness quota).
    pub fn forced_by_deficit(&self) -> u64 {
        self.forced_by_deficit
    }

    /// Switches forced by the maximum-cycles quota.
    pub fn forced_by_cycle_quota(&self) -> u64 {
        self.forced_by_cycle_quota
    }

    /// The event latency currently used by the estimator.
    pub fn effective_miss_lat(&self) -> f64 {
        match self.cfg.miss_lat_mode {
            MissLatencyMode::Fixed => self.cfg.miss_lat,
            MissLatencyMode::Measured => self.measured_lat,
        }
    }

    fn recalc(&mut self, now: Cycle) {
        if self.cfg.miss_lat_mode == MissLatencyMode::Measured {
            self.estimator.set_miss_lat(self.measured_lat.max(1.0));
        }
        let samples: Vec<_> = self.counters.iter().map(|c| c.sample()).collect();
        let quotas =
            self.estimator
                .recalc_weighted(now, &samples, self.cfg.target, self.weights.as_ref());
        for (d, q) in self.deficits.iter_mut().zip(&quotas) {
            d.set_quota(*q);
        }
        if let Some(t) = &self.tracer {
            let mut tr = t.borrow_mut();
            for (i, q) in quotas.iter().enumerate() {
                let ipc_st = self
                    .estimator
                    .estimates()
                    .get(i)
                    .and_then(|e| e.as_ref())
                    .map_or(0.0, |e| e.ipc_st);
                tr.emit(
                    now,
                    EventKind::EstimatorUpdate {
                        tid: ThreadId::new(i as u8),
                        ipc_st,
                        quota: *q,
                    },
                );
            }
        }
    }
}

impl SwitchPolicy for FairnessPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_switch_in(&mut self, tid: ThreadId, now: Cycle) {
        self.switch_in_at = now;
        // soe-lint: allow(slice-index): per-thread vectors are sized to the thread count at construction
        self.counters[tid.index()].on_switch_in();
        // soe-lint: allow(slice-index): per-thread vectors are sized to the thread count at construction
        let d = &mut self.deficits[tid.index()];
        let before = d.deficit();
        d.on_switch_in();
        if let Some(t) = &self.tracer {
            // A grant only exists when a quota is in force; with no
            // quota the balance is untouched and nothing is recorded.
            if let Some(quota) = d.quota() {
                let balance = d.deficit();
                t.borrow_mut().emit(
                    now,
                    EventKind::DeficitGrant {
                        tid,
                        credited: balance - before,
                        balance,
                        quota,
                    },
                );
            }
        }
    }

    fn on_switch_out(&mut self, tid: ThreadId, now: Cycle, reason: SwitchReason) {
        // soe-lint: allow(slice-index): per-thread vectors are sized to the thread count at construction
        self.counters[tid.index()].on_switch_out(now, reason);
    }

    fn after_retire(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        // soe-lint: allow(slice-index): per-thread vectors are sized to the thread count at construction
        self.counters[tid.index()].after_retire(now);
        // soe-lint: allow(slice-index): per-thread vectors are sized to the thread count at construction
        if self.deficits[tid.index()].on_retire() {
            self.forced_by_deficit += 1;
            if let Some(t) = &self.tracer {
                t.borrow_mut().emit(now, EventKind::DeficitForce { tid });
            }
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn on_miss_stall(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        SwitchDecision::Switch
    }

    fn observe_miss_latency(&mut self, _tid: ThreadId, remaining: Cycle) {
        // EWMA with a 1/32 step: fast enough to track variable-latency
        // event mixes, slow enough to smooth out overlap noise.
        self.measured_lat += (remaining as f64 - self.measured_lat) / 32.0;
    }

    fn each_cycle(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        if self.estimator.due(now) {
            self.recalc(now);
        }
        // The maximum-cycles quota is part of the enforcement mechanism
        // (it guarantees every thread is sampled within each Δ window);
        // with F = 0 the machine is plain event-only SOE.
        if self.cfg.target.is_enforced() && now - self.switch_in_at >= self.cfg.max_cycles_quota {
            self.forced_by_cycle_quota += 1;
            if let Some(t) = &self.tracer {
                t.borrow_mut()
                    .emit(now, EventKind::CycleQuotaExpiry { tid });
            }
            return SwitchDecision::Switch;
        }
        SwitchDecision::Continue
    }

    fn on_measure_start(&mut self, _now: Cycle) {
        // Keep estimator state and deficits (they are the mechanism's
        // long-lived memory); drop only the warm-up window history so
        // Figure 5 series cover exactly the measured window.
        self.clear_records();
    }

    fn next_decision_at(&self, _tid: ThreadId, _now: Cycle) -> Option<Cycle> {
        // `each_cycle` acts at exactly two scheduled points: the end of
        // the current Δ window (recalculation, any F) and the cycle
        // quota expiring (enforced F only).
        let due = self.estimator.next_due();
        if self.cfg.target.is_enforced() {
            Some(due.min(self.switch_in_at + self.cfg.max_cycles_quota))
        } else {
            Some(due)
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Simple time sharing (Section 6's strawman): switch every
/// `quota_cycles` cycles of occupancy, in addition to the ordinary
/// miss-event switches.
#[derive(Debug, Clone)]
pub struct TimeSlicePolicy {
    quota_cycles: u64,
    switch_in_at: Cycle,
    name: String,
}

impl TimeSlicePolicy {
    /// Creates the policy with the given cycle quota.
    ///
    /// # Panics
    ///
    /// Panics if `quota_cycles == 0`.
    pub fn new(quota_cycles: u64) -> Self {
        assert!(quota_cycles > 0, "cycle quota must be positive");
        Self {
            quota_cycles,
            switch_in_at: 0,
            name: format!("timeslice({quota_cycles})"),
        }
    }
}

impl SwitchPolicy for TimeSlicePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_switch_in(&mut self, _tid: ThreadId, now: Cycle) {
        self.switch_in_at = now;
    }

    fn each_cycle(&mut self, _tid: ThreadId, now: Cycle) -> SwitchDecision {
        if now - self.switch_in_at >= self.quota_cycles {
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn next_decision_at(&self, _tid: ThreadId, _now: Cycle) -> Option<Cycle> {
        Some(self.switch_in_at + self.quota_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(f: FairnessLevel) -> FairnessPolicy {
        FairnessPolicy::new(
            2,
            FairnessConfig {
                target: f,
                delta: 10_000,
                max_cycles_quota: 5_000,
                miss_lat: 300.0,
                miss_lat_mode: Default::default(),
                deficit_cap: 2.0,
                min_quota_cycles: 600,
                record_history: true,
            },
        )
    }

    /// Drives the policy through one synthetic round for `tid`:
    /// `instrs` retirements over `cycles` cycles, ending with a miss.
    fn round(p: &mut FairnessPolicy, tid: u8, start: Cycle, instrs: u64, cycles: u64) -> Cycle {
        let tid = ThreadId::new(tid);
        p.on_switch_in(tid, start);
        for k in 0..instrs {
            p.after_retire(tid, start + k * cycles / instrs.max(1));
        }
        p.on_switch_out(tid, start + cycles, SwitchReason::MissEvent);
        start + cycles + 25
    }

    #[test]
    fn recalc_happens_every_delta() {
        let mut p = policy(FairnessLevel::PERFECT);
        let mut now = 0;
        // Run synthetic alternating rounds past one delta.
        for _ in 0..20 {
            now = round(&mut p, 0, now, 500, 1_000);
            now = round(&mut p, 1, now, 100, 400);
        }
        // each_cycle drives the recalculation.
        p.on_switch_in(ThreadId::new(0), now);
        p.each_cycle(ThreadId::new(0), now);
        assert!(
            !p.records().is_empty(),
            "delta windows must have been recorded"
        );
    }

    #[test]
    fn unfair_pair_gets_quota_for_fast_thread() {
        let mut p = policy(FairnessLevel::PERFECT);
        let mut now = 0;
        for _ in 0..30 {
            now = round(&mut p, 0, now, 5_000, 2_000); // fast: rare misses
            now = round(&mut p, 1, now, 200, 100); // slow: missy
        }
        p.on_switch_in(ThreadId::new(0), now);
        p.each_cycle(ThreadId::new(0), now);
        let rec = p.records().last().expect("recorded").clone();
        assert!(
            rec.quotas[0].is_some(),
            "the miss-poor thread must get forced switches: {rec:?}"
        );
        assert!(
            rec.quotas[1].is_none(),
            "the missy thread keeps natural switching: {rec:?}"
        );
    }

    #[test]
    fn f_zero_never_forces_by_deficit() {
        let mut p = policy(FairnessLevel::NONE);
        let mut now = 0;
        for _ in 0..50 {
            now = round(&mut p, 0, now, 5_000, 2_000);
            now = round(&mut p, 1, now, 200, 100);
        }
        p.on_switch_in(ThreadId::new(0), now);
        p.each_cycle(ThreadId::new(0), now);
        let tid = ThreadId::new(0);
        for k in 0..10_000 {
            assert_eq!(p.after_retire(tid, now + k), SwitchDecision::Continue);
        }
        assert_eq!(p.forced_by_deficit(), 0);
    }

    #[test]
    fn max_cycles_quota_forces_eventually() {
        let mut p = policy(FairnessLevel::QUARTER);
        p.on_switch_in(ThreadId::new(0), 0);
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 100),
            SwitchDecision::Continue
        );
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 5_000),
            SwitchDecision::Switch,
            "cycle quota exceeded"
        );
        assert_eq!(p.forced_by_cycle_quota(), 1);
    }

    #[test]
    fn time_slice_switches_on_quota() {
        let mut p = TimeSlicePolicy::new(400);
        p.on_switch_in(ThreadId::new(0), 1_000);
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 1_399),
            SwitchDecision::Continue
        );
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 1_400),
            SwitchDecision::Switch
        );
        assert_eq!(
            p.on_miss_stall(ThreadId::new(0), 1_200),
            SwitchDecision::Switch,
            "misses still switch"
        );
    }

    #[test]
    #[should_panic(expected = "delta / threads")]
    fn quota_above_delta_over_threads_panics() {
        FairnessPolicy::new(
            4,
            FairnessConfig {
                target: FairnessLevel::HALF,
                delta: 100_000,
                max_cycles_quota: 50_000,
                miss_lat: 300.0,
                miss_lat_mode: Default::default(),
                deficit_cap: 2.0,
                min_quota_cycles: 600,
                record_history: false,
            },
        );
    }

    #[test]
    fn measured_miss_latency_tracks_observations() {
        let mut p = FairnessPolicy::new(
            2,
            FairnessConfig {
                miss_lat_mode: MissLatencyMode::Measured,
                ..FairnessConfig::paper(FairnessLevel::HALF)
            },
        );
        assert_eq!(p.effective_miss_lat(), 300.0);
        for _ in 0..500 {
            p.observe_miss_latency(ThreadId::new(0), 100);
        }
        assert!(
            (p.effective_miss_lat() - 100.0).abs() < 5.0,
            "EWMA should converge to the observed latency: {}",
            p.effective_miss_lat()
        );
    }

    #[test]
    fn fixed_mode_ignores_observations() {
        let mut p = policy(FairnessLevel::HALF);
        for _ in 0..500 {
            p.observe_miss_latency(ThreadId::new(0), 100);
        }
        assert_eq!(p.effective_miss_lat(), 300.0);
    }

    #[test]
    fn weighted_policy_biases_quota_toward_heavy_thread() {
        use soe_model::weighted::Weights;
        let mut p = policy(FairnessLevel::PERFECT).with_weights(Weights::new(vec![1.0, 1.0]));
        let mut pw = policy(FairnessLevel::PERFECT).with_weights(Weights::new(vec![4.0, 1.0]));
        let mut now = 0;
        let mut now_w = 0;
        for _ in 0..30 {
            now = round(&mut p, 0, now, 5_000, 2_000);
            now = round(&mut p, 1, now, 5_000, 2_000);
            now_w = round(&mut pw, 0, now_w, 5_000, 2_000);
            now_w = round(&mut pw, 1, now_w, 5_000, 2_000);
        }
        p.on_switch_in(ThreadId::new(0), now);
        p.each_cycle(ThreadId::new(0), now);
        pw.on_switch_in(ThreadId::new(0), now_w);
        pw.each_cycle(ThreadId::new(0), now_w);
        // Identical threads: uniform weights give (nearly) equal quotas;
        // 4:1 weights let thread 0 run ~4x longer between forced switches.
        let u = p.records().last().unwrap().clone();
        let w = pw.records().last().unwrap().clone();
        // Identical threads, uniform weights: already fair, no forced
        // switches for either.
        assert!(
            u.quotas.iter().all(|q| q.is_none()),
            "uniform quotas {:?}",
            u.quotas
        );
        // 4:1 weights: the light thread must be throttled to a quarter of
        // its natural quota while the heavy thread stays unconstrained.
        assert!(
            w.quotas[0].is_none(),
            "heavy thread unconstrained: {:?}",
            w.quotas
        );
        let light = w.quotas[1].expect("light thread throttled");
        let est = w.estimates[1];
        assert!(
            (light / est.ipm - 0.25).abs() < 0.05,
            "light quota {} vs IPM {}",
            light,
            est.ipm
        );
    }

    #[test]
    fn policy_is_downcastable() {
        let p = policy(FairnessLevel::HALF);
        let any = p.as_any().expect("fairness policy exposes state");
        assert!(any.downcast_ref::<FairnessPolicy>().is_some());
    }
}
