//! Conversions from the fairness engine's Δ-window records to plottable
//! time series — the three panels of the paper's Figure 5.

use soe_model::fairness_of;
use soe_stats::TimeSeries;

use crate::estimator::WindowRecord;

/// Per-thread estimated `IPC_ST` over time (Figure 5, top panel).
///
/// # Panics
///
/// Panics if `names` does not match the records' thread count.
pub fn estimated_ipc_st_series(records: &[WindowRecord], names: &[&str]) -> Vec<TimeSeries> {
    check(records, names.len());
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut ts = TimeSeries::new(format!("est_ipc_st[{name}]"));
            for r in records {
                // soe-lint: allow(slice-index): check() pins every record's per-thread lengths to names.len()
                ts.push(r.at as f64, r.estimates[i].ipc_st);
            }
            ts
        })
        .collect()
}

/// Per-thread *achieved* speedup over time: each window's
/// `IPC_SOE_j / IPC_ST_j` with the real (measured-alone) `IPC_ST`
/// (Figure 5, middle panel).
///
/// # Panics
///
/// Panics if `ipc_st_real` does not match the records' thread count or
/// contains a non-positive IPC, or `names` mismatches.
pub fn speedup_series(
    records: &[WindowRecord],
    names: &[&str],
    ipc_st_real: &[f64],
) -> Vec<TimeSeries> {
    check(records, names.len());
    assert_eq!(
        names.len(),
        ipc_st_real.len(),
        "one reference IPC per thread"
    );
    assert!(
        ipc_st_real.iter().all(|x| *x > 0.0),
        "reference IPCs must be positive"
    );
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut ts = TimeSeries::new(format!("speedup[{name}]"));
            for r in records {
                // soe-lint: allow(slice-index): check() pins every record's per-thread lengths to names.len()
                let ipc = r.window_instrs[i] as f64 / r.window_cycles.max(1) as f64;
                // soe-lint: allow(slice-index): i < names.len() == ipc_st_real.len() (asserted above)
                ts.push(r.at as f64, ipc / ipc_st_real[i]);
            }
            ts
        })
        .collect()
}

/// Achieved fairness over time: the min speedup ratio per window
/// (Figure 5, bottom panel).
///
/// # Panics
///
/// Panics under the same conditions as [`speedup_series`].
pub fn fairness_series(records: &[WindowRecord], ipc_st_real: &[f64]) -> TimeSeries {
    check(records, ipc_st_real.len());
    let mut ts = TimeSeries::new("achieved_fairness");
    for r in records {
        let speedups: Vec<f64> = ipc_st_real
            .iter()
            .enumerate()
            // soe-lint: allow(slice-index): check() pins every record's per-thread lengths to the thread count
            .map(|(i, st)| (r.window_instrs[i] as f64 / r.window_cycles.max(1) as f64) / st)
            .collect();
        ts.push(r.at as f64, fairness_of(&speedups));
    }
    ts
}

fn check(records: &[WindowRecord], threads: usize) {
    for r in records {
        assert_eq!(r.estimates.len(), threads, "record thread count mismatch");
        assert_eq!(
            r.window_instrs.len(),
            threads,
            "record thread count mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soe_model::ThreadEstimate;

    fn record(at: u64, instrs: [u64; 2]) -> WindowRecord {
        WindowRecord {
            at,
            window_cycles: 1_000,
            window_instrs: instrs.to_vec(),
            estimates: vec![
                ThreadEstimate {
                    ipm: 100.0,
                    cpm: 50.0,
                    ipc_st: 2.0,
                },
                ThreadEstimate {
                    ipm: 10.0,
                    cpm: 10.0,
                    ipc_st: 1.0,
                },
            ],
            quotas: vec![None, None],
        }
    }

    #[test]
    fn estimate_series_tracks_records() {
        let recs = vec![record(1_000, [500, 100]), record(2_000, [400, 200])];
        let s = estimated_ipc_st_series(&recs, &["a", "b"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 2);
        assert_eq!(s[0].points()[0].y, 2.0);
        assert_eq!(s[1].name(), "est_ipc_st[b]");
    }

    #[test]
    fn speedups_use_real_reference() {
        let recs = vec![record(1_000, [1_000, 500])];
        let s = speedup_series(&recs, &["a", "b"], &[2.0, 1.0]);
        assert!((s[0].points()[0].y - 0.5).abs() < 1e-12);
        assert!((s[1].points()[0].y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fairness_series_is_min_ratio() {
        let recs = vec![record(1_000, [1_000, 250])];
        let ts = fairness_series(&recs, &[2.0, 1.0]);
        // speedups: 0.5 and 0.25 → fairness 0.5.
        assert!((ts.points()[0].y - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one reference IPC per thread")]
    fn mismatched_reference_panics() {
        speedup_series(&[record(1, [1, 1])], &["a", "b"], &[1.0]);
    }
}
