//! The policy registry: named construction of switch disciplines.
//!
//! Experiments refer to disciplines by name (`threadsweep --policy
//! islip`, the `policyzoo` grid, the conformance matrix); the
//! [`PolicyFactory`] maps each name to a builder that instantiates a
//! `Box<dyn SwitchPolicy>` from a [`PolicySpec`] — thread count, target
//! [`FairnessLevel`], and sizing. Every builder is parameterized the
//! same way, so a sweep can iterate `factory.names()` and get a
//! comparable policy per cell; the conformance matrix in
//! `tests/policy_conformance.rs` asserts that every registered name
//! passes the shared machine-checked contract.

use std::collections::BTreeMap;
use std::fmt;

use soe_model::weighted::Weights;
use soe_model::FairnessLevel;
use soe_sim::{SimError, SwitchPolicy};

use crate::policies::{IslipPolicy, UsageFairPolicy, WdrrPolicy};
use crate::policy::{FairnessConfig, FairnessPolicy, TimeSlicePolicy};

/// Everything a policy builder may be parameterized by: the roster
/// size, the target fairness, the mechanism sizing, and optional
/// per-thread weights.
///
/// The `target` field is authoritative: builders override
/// `fairness.target` with it, so callers can reuse one sizing template
/// across a fairness sweep.
#[derive(Debug, Clone)]
pub struct PolicySpec {
    /// Number of hardware threads in the roster.
    pub threads: usize,
    /// Target fairness `F` (0 disables enforcement where applicable).
    pub target: FairnessLevel,
    /// Mechanism sizing (Δ, cycle quota, miss latency, deficit cap, …).
    pub fairness: FairnessConfig,
    /// Optional per-thread service weights (`None` = uniform).
    pub weights: Option<Weights>,
}

impl PolicySpec {
    /// A spec with uniform weights.
    pub fn new(threads: usize, target: FairnessLevel, fairness: FairnessConfig) -> Self {
        Self {
            threads,
            target,
            fairness,
            weights: None,
        }
    }

    /// Sets per-thread weights (builder style).
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Validates the spec: at least one thread, a sizing that lets
    /// every thread run within each Δ window, and one weight per thread
    /// when weights are given.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::Invalid`] naming the offending field.
    pub fn check(&self) -> Result<(), PolicyError> {
        let invalid = |reason: String| {
            Err(PolicyError::Invalid {
                name: String::new(),
                reason,
            })
        };
        if self.threads == 0 {
            return invalid("roster must contain at least one thread".into());
        }
        if let Err(e) = self.fairness.check(self.threads) {
            return invalid(e.0);
        }
        if let Some(w) = &self.weights {
            if w.len() != self.threads {
                return invalid(format!(
                    "{} weights for {} threads (need exactly one per thread)",
                    w.len(),
                    self.threads
                ));
            }
        }
        Ok(())
    }

    /// How aggressively a fixed-knob discipline should preempt at this
    /// fairness target, as a slice/quantum *shrink factor* in (0, 1]:
    /// `1 / (1 + 3F)`. F = 0 keeps the full `max_cycles_quota` (mild,
    /// throughput-friendly); F = 1 shrinks turns to a quarter of it
    /// (tight interleaving). This is the registry's uniform translation
    /// of the paper's continuous F knob for disciplines that have no
    /// estimator to derive per-thread quotas from.
    pub fn aggressiveness(&self) -> f64 {
        1.0 / (1.0 + 3.0 * self.target.get())
    }

    /// Occupancy slice in cycles for slice-based disciplines:
    /// `max_cycles_quota × aggressiveness`, floored at
    /// `min_quota_cycles` (and 1).
    pub fn slice_cycles(&self) -> u64 {
        let raw = (self.fairness.max_cycles_quota as f64 * self.aggressiveness()) as u64;
        raw.max(self.fairness.min_quota_cycles).max(1)
    }

    /// Instruction quantum for quantum-based disciplines: a quarter of
    /// the cycle quota's worth of instructions at IPC 1, scaled by
    /// [`PolicySpec::aggressiveness`] and floored at 1.
    pub fn quantum_instructions(&self) -> f64 {
        let base = self.fairness.max_cycles_quota as f64 / 4.0;
        (base * self.aggressiveness()).max(1.0)
    }

    /// Ban threshold for usage-fair banning, as a multiple of the fair
    /// share: `1 / F`. `None` when F = 0 (banning disabled); F = 1 bans
    /// exactly at the fair share.
    pub fn share_multiple(&self) -> Option<f64> {
        if self.target.is_enforced() {
            Some(1.0 / self.target.get())
        } else {
            None
        }
    }
}

/// Typed failure of a registry operation — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The requested name is not registered.
    Unknown {
        /// The name that was asked for.
        name: String,
        /// Every registered name, sorted (for the error message).
        known: Vec<String>,
    },
    /// A name was registered twice.
    Duplicate {
        /// The already-taken name.
        name: String,
    },
    /// The spec failed validation for this policy.
    Invalid {
        /// The policy being built (empty while the spec is checked
        /// standalone).
        name: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Unknown { name, known } => {
                write!(
                    f,
                    "unknown policy {name:?} (registered: {})",
                    known.join(", ")
                )
            }
            PolicyError::Duplicate { name } => {
                write!(f, "policy {name:?} is already registered")
            }
            PolicyError::Invalid { name, reason } => {
                if name.is_empty() {
                    write!(f, "invalid policy spec: {reason}")
                } else {
                    write!(f, "invalid spec for policy {name:?}: {reason}")
                }
            }
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<PolicyError> for SimError {
    fn from(e: PolicyError) -> Self {
        SimError::InvalidConfig(e.to_string())
    }
}

/// A registered builder: spec in, boxed policy (or typed error) out.
pub type PolicyBuilder =
    Box<dyn Fn(&PolicySpec) -> Result<Box<dyn SwitchPolicy>, PolicyError> + Send + Sync>;

/// Name → builder registry for switch disciplines.
///
/// # Examples
///
/// ```
/// use soe_core::{FairnessConfig, PolicyFactory, PolicySpec};
/// use soe_model::FairnessLevel;
///
/// let factory = PolicyFactory::builtin();
/// let spec = PolicySpec::new(
///     2,
///     FairnessLevel::HALF,
///     FairnessConfig::paper(FairnessLevel::HALF),
/// );
/// let policy = factory.build("islip", &spec).expect("registered");
/// assert!(policy.name().starts_with("islip"));
/// assert!(factory.build("no-such", &spec).is_err());
/// ```
pub struct PolicyFactory {
    builders: BTreeMap<String, PolicyBuilder>,
}

impl PolicyFactory {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            builders: BTreeMap::new(),
        }
    }

    /// The built-in zoo: `fairness` (the paper's mechanism),
    /// `timeslice` (Section 6 strawman), `islip`, `ban`, and `wdrr`.
    pub fn builtin() -> Self {
        let mut f = Self::new();
        // The names are fresh in an empty registry, so registration
        // cannot fail; errors here would be a bug in this constructor.
        let _ = f.register("fairness", |spec: &PolicySpec| {
            let cfg = FairnessConfig {
                target: spec.target,
                ..spec.fairness
            };
            let p = FairnessPolicy::new(spec.threads, cfg);
            Ok(match spec.weights.clone() {
                Some(w) => Box::new(p.with_weights(w)) as Box<dyn SwitchPolicy>,
                None => Box::new(p) as Box<dyn SwitchPolicy>,
            })
        });
        let _ = f.register("timeslice", |spec: &PolicySpec| {
            Ok(Box::new(TimeSlicePolicy::new(spec.slice_cycles())) as Box<dyn SwitchPolicy>)
        });
        let _ = f.register("islip", |spec: &PolicySpec| {
            Ok(Box::new(IslipPolicy::new(
                spec.threads,
                spec.slice_cycles(),
                spec.fairness.miss_lat,
            )) as Box<dyn SwitchPolicy>)
        });
        let _ = f.register("ban", |spec: &PolicySpec| {
            Ok(Box::new(UsageFairPolicy::new(
                spec.threads,
                spec.fairness.max_cycles_quota,
                spec.fairness.delta,
                spec.share_multiple(),
            )) as Box<dyn SwitchPolicy>)
        });
        let _ = f.register("wdrr", |spec: &PolicySpec| {
            Ok(Box::new(WdrrPolicy::new(
                spec.threads,
                spec.quantum_instructions(),
                spec.weights.as_ref(),
                spec.fairness.deficit_cap,
                spec.fairness.max_cycles_quota,
            )) as Box<dyn SwitchPolicy>)
        });
        f
    }

    /// Registers a builder under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::Duplicate`] if the name is taken — a
    /// registry never silently replaces a discipline.
    pub fn register(
        &mut self,
        name: &str,
        builder: impl Fn(&PolicySpec) -> Result<Box<dyn SwitchPolicy>, PolicyError>
            + Send
            + Sync
            + 'static,
    ) -> Result<(), PolicyError> {
        if self.builders.contains_key(name) {
            return Err(PolicyError::Duplicate {
                name: name.to_string(),
            });
        }
        self.builders.insert(name.to_string(), Box::new(builder));
        Ok(())
    }

    /// Builds the named policy from the spec.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Unknown`] for an unregistered name,
    /// [`PolicyError::Invalid`] when the spec fails validation (checked
    /// *before* the builder runs, so builders see only valid specs),
    /// or whatever the builder itself returns.
    pub fn build(
        &self,
        name: &str,
        spec: &PolicySpec,
    ) -> Result<Box<dyn SwitchPolicy>, PolicyError> {
        let Some(builder) = self.builders.get(name) else {
            return Err(PolicyError::Unknown {
                name: name.to_string(),
                known: self.names(),
            });
        };
        spec.check().map_err(|e| match e {
            PolicyError::Invalid { reason, .. } => PolicyError::Invalid {
                name: name.to_string(),
                reason,
            },
            other => other,
        })?;
        builder(spec)
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }
}

impl Default for PolicyFactory {
    fn default() -> Self {
        Self::builtin()
    }
}

impl fmt::Debug for PolicyFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyFactory")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(threads: usize, f: FairnessLevel) -> PolicySpec {
        PolicySpec::new(threads, f, FairnessConfig::paper(f))
    }

    #[test]
    fn builtin_has_the_five_disciplines_sorted() {
        let f = PolicyFactory::builtin();
        assert_eq!(
            f.names(),
            vec!["ban", "fairness", "islip", "timeslice", "wdrr"]
        );
    }

    #[test]
    fn every_builtin_builds_at_2_4_8_threads() {
        let f = PolicyFactory::builtin();
        for n in [2usize, 4, 8] {
            for name in f.names() {
                let mut s = spec(n, FairnessLevel::HALF);
                // Paper sizing needs the quota scaled down for wide
                // rosters (quota × threads ≤ Δ).
                s.fairness.max_cycles_quota = s
                    .fairness
                    .max_cycles_quota
                    .min(s.fairness.delta / (n as u64 + 1));
                let p = f.build(&name, &s).expect("builtin builds");
                assert!(!p.name().is_empty());
            }
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let f = PolicyFactory::builtin();
        let Err(err) = f.build("lottery", &spec(2, FairnessLevel::NONE)) else {
            panic!("lottery must not build");
        };
        match err {
            PolicyError::Unknown { name, known } => {
                assert_eq!(name, "lottery");
                assert_eq!(known.len(), 5);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut f = PolicyFactory::builtin();
        let err = f
            .register("islip", |_s| {
                Err(PolicyError::Invalid {
                    name: "islip".into(),
                    reason: "never called".into(),
                })
            })
            .unwrap_err();
        assert_eq!(
            err,
            PolicyError::Duplicate {
                name: "islip".into()
            }
        );
    }

    #[test]
    fn invalid_spec_is_rejected_before_the_builder_runs() {
        let f = PolicyFactory::builtin();
        let zero = spec(0, FairnessLevel::HALF);
        for name in f.names() {
            let Err(err) = f.build(&name, &zero) else {
                panic!("{name}: zero-thread spec must not build");
            };
            assert!(
                matches!(err, PolicyError::Invalid { .. }),
                "{name}: {err:?}"
            );
            assert!(err.to_string().contains("at least one thread"), "{err}");
        }
        // Quota too large for the roster is caught the same way.
        let mut wide = spec(8, FairnessLevel::HALF);
        wide.fairness.max_cycles_quota = wide.fairness.delta;
        assert!(matches!(
            f.build("fairness", &wide),
            Err(PolicyError::Invalid { .. })
        ));
    }

    #[test]
    fn weight_count_must_match_threads() {
        let f = PolicyFactory::builtin();
        let s = spec(4, FairnessLevel::HALF).with_weights(Weights::new(vec![2.0, 1.0]));
        assert!(matches!(
            f.build("wdrr", &s),
            Err(PolicyError::Invalid { .. })
        ));
    }

    #[test]
    fn aggressiveness_maps_f_to_knobs() {
        let s0 = spec(2, FairnessLevel::NONE);
        let s1 = spec(2, FairnessLevel::PERFECT);
        assert!((s0.aggressiveness() - 1.0).abs() < 1e-12);
        assert!((s1.aggressiveness() - 0.25).abs() < 1e-12);
        assert_eq!(s0.slice_cycles(), s0.fairness.max_cycles_quota);
        assert!(s1.slice_cycles() < s0.slice_cycles());
        assert_eq!(s0.share_multiple(), None);
        assert_eq!(s1.share_multiple(), Some(1.0));
    }

    #[test]
    fn policy_error_messages_name_the_problem() {
        let e = PolicyError::Unknown {
            name: "x".into(),
            known: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "unknown policy \"x\" (registered: a, b)");
        let d = PolicyError::Duplicate { name: "a".into() };
        assert!(d.to_string().contains("already registered"));
        let sim: SimError = d.into();
        assert!(matches!(sim, SimError::InvalidConfig(_)));
    }
}
