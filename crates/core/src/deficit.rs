//! Deficit counters (Section 3.2): realizing the average `IPSw_j` quota
//! despite miss-driven early switches.

/// A per-thread deficit counter, operated Deficit-Round-Robin style:
///
/// * on switch-in the counter is credited with the thread's `IPSw_j`
///   quota,
/// * each retired instruction debits one,
/// * the thread is switched out when the counter reaches zero — unless a
///   last-level miss switches it out first, in which case the *leftover*
///   carries into the next round, so the long-run average instructions
///   per switch converges to `IPSw_j`.
///
/// The carried leftover is capped at `cap_multiple × quota` (an
/// implementation choice the paper leaves open) so that a thread that
/// misses early for a long stretch cannot bank unbounded credit and then
/// evade enforcement across a phase change.
///
/// # Examples
///
/// ```
/// use soe_core::DeficitCounter;
///
/// let mut d = DeficitCounter::new(2.0);
/// d.set_quota(Some(3.0));
/// d.on_switch_in();
/// assert!(!d.on_retire());
/// assert!(!d.on_retire());
/// assert!(d.on_retire()); // third instruction exhausts the quota
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DeficitCounter {
    deficit: f64,
    quota: Option<f64>,
    cap_multiple: f64,
}

impl DeficitCounter {
    /// Creates a counter with no quota (never forces a switch) and the
    /// given leftover cap multiple.
    ///
    /// # Panics
    ///
    /// Panics if `cap_multiple < 1.0` (the cap must at least admit one
    /// full quota).
    pub fn new(cap_multiple: f64) -> Self {
        assert!(cap_multiple >= 1.0, "cap must admit at least one quota");
        Self {
            deficit: 0.0,
            quota: None,
            cap_multiple,
        }
    }

    /// Sets (or clears) the quota computed by Eq 9. `None` disables
    /// forced switches for this thread (its quota is its natural `IPM`).
    ///
    /// # Panics
    ///
    /// Panics if the quota is not positive.
    pub fn set_quota(&mut self, quota: Option<f64>) {
        if let Some(q) = quota {
            assert!(q > 0.0, "quota must be positive");
        }
        self.quota = quota;
    }

    /// The current quota.
    pub fn quota(&self) -> Option<f64> {
        self.quota
    }

    /// Current deficit (unused credit).
    pub fn deficit(&self) -> f64 {
        self.deficit
    }

    /// Credits the quota on switch-in, capping banked leftover.
    pub fn on_switch_in(&mut self) {
        if let Some(q) = self.quota {
            self.deficit = (self.deficit + q).min(q * self.cap_multiple);
        }
    }

    /// Debits one retired instruction; returns `true` when the quota is
    /// exhausted and the thread should be switched out.
    pub fn on_retire(&mut self) -> bool {
        if self.quota.is_none() {
            return false;
        }
        self.deficit -= 1.0;
        self.deficit <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_quota_never_forces() {
        let mut d = DeficitCounter::new(2.0);
        d.on_switch_in();
        for _ in 0..1_000 {
            assert!(!d.on_retire());
        }
    }

    #[test]
    fn leftover_carries_after_early_miss() {
        let mut d = DeficitCounter::new(4.0);
        d.set_quota(Some(10.0));
        d.on_switch_in();
        // Miss after only 4 instructions: 6 left over.
        for _ in 0..4 {
            assert!(!d.on_retire());
        }
        d.on_switch_in(); // credit 10 more: 16 available
        let mut count = 0;
        while !d.on_retire() {
            count += 1;
        }
        assert_eq!(count + 1, 16);
    }

    #[test]
    fn average_instructions_per_switch_converges_to_quota() {
        // Alternate: some rounds end early (miss at 3 instrs), others run
        // to quota exhaustion. The long-run average per round must exceed
        // the per-round minimum and reflect the carried deficit.
        let mut d = DeficitCounter::new(8.0);
        d.set_quota(Some(7.0));
        let mut retired_total = 0u64;
        let mut rounds = 0u64;
        for round in 0..10_000u64 {
            d.on_switch_in();
            rounds += 1;
            if round % 2 == 0 {
                // Miss-terminated round after 3 instructions.
                for _ in 0..3 {
                    if d.on_retire() {
                        break;
                    }
                    retired_total += 1;
                }
            } else {
                // Run until the deficit forces the switch.
                loop {
                    let exhausted = d.on_retire();
                    retired_total += 1;
                    if exhausted {
                        break;
                    }
                }
            }
        }
        let avg = retired_total as f64 / rounds as f64;
        assert!((avg - 7.0).abs() < 0.3, "average {avg} vs quota 7");
    }

    #[test]
    fn cap_bounds_banked_credit() {
        let mut d = DeficitCounter::new(2.0);
        d.set_quota(Some(10.0));
        for _ in 0..100 {
            d.on_switch_in(); // never retires anything
        }
        assert!(d.deficit() <= 20.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn zero_quota_panics() {
        DeficitCounter::new(2.0).set_quota(Some(0.0));
    }
}
