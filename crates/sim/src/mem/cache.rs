//! A generic set-associative, write-back, LRU cache tag array.

use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;
use crate::types::Addr;

/// Result of filling a line: the line that had to be evicted, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub line_addr: Addr,
    /// Whether the victim was dirty (needs a write-back bus transfer).
    pub dirty: bool,
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions (write-backs).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; `0.0` when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A set-associative cache tag array with true-LRU replacement and
/// write-back/write-allocate semantics.
///
/// This models only tags and replacement state (timing lives in the
/// [`crate::mem::Hierarchy`]); it is shared by the L1I, L1D and L2
/// instances.
///
/// # Examples
///
/// ```
/// use soe_sim::config::CacheConfig;
/// use soe_sim::mem::Cache;
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 1, line_bytes: 64, hit_latency: 1, mshrs: 4 });
/// assert!(!c.lookup(0x0));         // cold miss
/// c.fill(0x0, false);
/// assert!(c.lookup(0x0));          // now a hit
/// assert!(!c.lookup(0x40));        // different set, still cold
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    use_counter: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
    sets_shift: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Self {
            lines: vec![Line::default(); cfg.sets * cfg.ways],
            use_counter: 0,
            stats: CacheStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (cfg.sets - 1) as u64,
            sets_shift: cfg.sets.trailing_zeros(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr >> self.line_shift << self.line_shift
    }

    fn set_index(&self, addr: Addr) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag(&self, addr: Addr) -> u64 {
        addr >> self.line_shift >> self.sets_shift
    }

    fn set(&mut self, addr: Addr) -> &mut [Line] {
        let idx = self.set_index(addr);
        // soe-lint: allow(slice-index): set_index masks with sets-1 and lines has sets*ways entries
        &mut self.lines[idx * self.cfg.ways..(idx + 1) * self.cfg.ways]
    }

    /// Looks up `addr`; updates LRU state and hit/miss counters.
    pub fn lookup(&mut self, addr: Addr) -> bool {
        self.use_counter += 1;
        let counter = self.use_counter;
        let tag = self.tag(addr);
        let set = self.set(addr);
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = counter;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Checks for presence without touching LRU or counters.
    pub fn probe(&self, addr: Addr) -> bool {
        let tag = self.tag(addr);
        let idx = self.set_index(addr);
        // soe-lint: allow(slice-index): set_index masks with sets-1 and lines has sets*ways entries
        self.lines[idx * self.cfg.ways..(idx + 1) * self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Marks the line containing `addr` dirty, if present. Returns whether
    /// the line was present.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let tag = self.tag(addr);
        let set = self.set(addr);
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Fills the line containing `addr` (allocating it `dirty` if a store
    /// caused the fill) and returns the eviction it displaced, if any.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Eviction> {
        self.use_counter += 1;
        let counter = self.use_counter;
        let tag = self.tag(addr);
        let set_idx = self.set_index(addr);
        let ways = self.cfg.ways;
        let sets_shift = self.sets_shift;
        let line_shift = self.line_shift;
        // soe-lint: allow(slice-index): set_index masks with sets-1 and lines has sets*ways entries
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];

        // Refill of an already-present line just refreshes it.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = counter;
            line.dirty |= dirty;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            // soe-lint: allow(panic-unwrap): CacheConfig::check rejects ways == 0, so every set is non-empty
            .expect("ways > 0");
        let evicted = victim.valid.then(|| Eviction {
            line_addr: (victim.tag << sets_shift | set_idx as u64) << line_shift,
            dirty: victim.dirty,
        });
        if let Some(e) = &evicted {
            if e.dirty {
                self.stats.writebacks += 1;
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            last_use: counter,
        };
        evicted
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(0x100));
        c.fill(0x100, false);
        assert!(c.lookup(0x100));
        assert!(c.lookup(0x13f)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: addresses with bit 6 clear (line 64B, 2 sets).
        c.fill(0x000, false);
        c.fill(0x080, false); // same set (stride 128 = 2 sets * 64)
        assert!(c.lookup(0x000)); // touch first; second is now LRU
        let ev = c.fill(0x100, false).expect("eviction");
        assert_eq!(ev.line_addr, 0x080);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000, true);
        c.fill(0x080, false);
        c.fill(0x100, false); // evicts 0x000 (dirty)
        let s = c.stats();
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn mark_dirty_requires_presence() {
        let mut c = tiny();
        assert!(!c.mark_dirty(0x40));
        c.fill(0x40, false);
        assert!(c.mark_dirty(0x40));
        // Evicting it now should count a writeback.
        c.fill(0xc0, false);
        c.fill(0x140, false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0x00, false);
        assert_eq!(c.fill(0x00, true), None);
        // The line is now dirty via the refill.
        c.fill(0x80, false);
        c.fill(0x100, false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_addr(0x7f), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.lookup(0x0);
        c.fill(0x0, false);
        c.lookup(0x0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
