//! The pipelined front-side bus between the L2 and memory.

use crate::types::Cycle;

/// A pipelined bus: one transfer may start every `cycles_per_transfer`
/// cycles; transfers in flight overlap with the constant memory latency.
///
/// # Examples
///
/// ```
/// use soe_sim::mem::Bus;
///
/// let mut b = Bus::new(4);
/// assert_eq!(b.schedule(10), 10); // idle bus grants immediately
/// assert_eq!(b.schedule(10), 14); // next slot 4 cycles later
/// assert_eq!(b.schedule(20), 20); // bus drained by then
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    cycles_per_transfer: Cycle,
    next_free: Cycle,
    transfers: u64,
}

impl Bus {
    /// Creates a bus with the given per-transfer occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_transfer == 0`.
    pub fn new(cycles_per_transfer: Cycle) -> Self {
        assert!(cycles_per_transfer > 0, "bus occupancy must be positive");
        Self {
            cycles_per_transfer,
            next_free: 0,
            transfers: 0,
        }
    }

    /// Schedules a transfer requested at `ready`; returns the cycle the
    /// transfer actually starts.
    pub fn schedule(&mut self, ready: Cycle) -> Cycle {
        let start = ready.max(self.next_free);
        self.next_free = start + self.cycles_per_transfer;
        self.transfers += 1;
        start
    }

    /// Total transfers scheduled (demand fills plus write-backs).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cycle at which the bus next becomes free.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialize() {
        let mut b = Bus::new(4);
        assert_eq!(b.schedule(0), 0);
        assert_eq!(b.schedule(0), 4);
        assert_eq!(b.schedule(0), 8);
        assert_eq!(b.transfers(), 3);
    }

    #[test]
    fn idle_gaps_are_not_accumulated() {
        let mut b = Bus::new(4);
        b.schedule(0);
        assert_eq!(b.schedule(100), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_occupancy_panics() {
        Bus::new(0);
    }
}
