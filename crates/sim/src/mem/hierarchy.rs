//! The full memory hierarchy: L1I + L1D backed by a unified L2, a
//! pipelined bus and constant-latency memory, plus i/d TLBs whose page
//! walks go through the L2.

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;
use crate::mem::{Bus, Cache, MshrFile, Tlb};
use crate::obs::{EventKind, SharedTracer};
use crate::types::{Addr, Cycle};

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Cycle at which the data is available.
    pub complete_at: Cycle,
    /// Whether the data is being served from memory — i.e. the access
    /// depends on an L2 miss (its own, or a coalesced in-flight fill).
    /// A ROB entry carrying this flag that reaches the retirement head
    /// unresolved is the paper's SOE switch event.
    pub from_memory: bool,
    /// Whether this access *initiated* a new L2 miss (first of an
    /// overlapped group) — the statistic the paper's `Misses_j` counts.
    pub initiated_l2_miss: bool,
}

/// Aggregate hierarchy counters (beyond the per-structure stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Demand L2 misses initiated by data accesses.
    pub data_l2_misses: u64,
    /// Demand L2 misses initiated by instruction fetches.
    pub ifetch_l2_misses: u64,
    /// L2 misses initiated by TLB page walks.
    pub walk_l2_misses: u64,
    /// L2 lines fetched by the stream prefetcher.
    pub prefetches_issued: u64,
    /// Prefetched lines that a demand access later hit (useful
    /// prefetches).
    pub prefetches_useful: u64,
}

/// The shared memory hierarchy. Caches, TLBs and predictors are *not*
/// flushed on SOE thread switches (Section 4.1 of the paper); threads
/// interact only through capacity and bandwidth.
///
/// # Examples
///
/// ```
/// use soe_sim::{MachineConfig, mem::Hierarchy};
///
/// let cfg = MachineConfig::test_config();
/// let mut h = Hierarchy::new(&cfg);
/// let first = h.access_data(0, 0x4000, false);
/// assert!(first.from_memory); // cold miss goes to memory
/// let again = h.access_data(first.complete_at, 0x4000, false);
/// assert!(!again.from_memory); // now cached
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1i_mshr: MshrFile,
    l1d_mshr: MshrFile,
    l2_mshr: MshrFile,
    bus: Bus,
    itlb: Tlb,
    dtlb: Tlb,
    mem_latency: Cycle,
    prefetch_degree: usize,
    /// Prefetched lines not yet touched by demand (for usefulness
    /// accounting).
    // BTreeSet keeps the simulator free of hash-order state even though
    // this set is only probed point-wise today.
    prefetched: std::collections::BTreeSet<Addr>,
    stats: HierarchyStats,
    /// Optional event recorder; every initiated demand L2 miss emits a
    /// miss event plus a fill event scheduled at its completion cycle.
    tracer: Option<SharedTracer>,
}

/// Base physical address of the simulated page tables; placed far above
/// any workload address space so PTE lines never alias workload lines.
const PAGE_TABLE_BASE: Addr = 0x7000_0000_0000;

impl Hierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l1i_mshr: MshrFile::new(cfg.l1i.mshrs),
            l1d_mshr: MshrFile::new(cfg.l1d.mshrs),
            l2_mshr: MshrFile::new(cfg.l2.mshrs),
            bus: Bus::new(cfg.bus_cycles_per_transfer),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            mem_latency: cfg.mem_latency,
            prefetch_degree: cfg.l2_prefetch_degree,
            prefetched: std::collections::BTreeSet::new(),
            stats: HierarchyStats::default(),
            tracer: None,
        }
    }

    /// Attaches a cycle-level event recorder (normally a clone of the
    /// machine's, via [`crate::Machine::attach_tracer`]).
    pub fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Issues next-line prefetches behind a demand miss to `line`.
    fn prefetch_after(&mut self, ready: Cycle, line: Addr) {
        let line_bytes = self.l2.config().line_bytes as Addr;
        for k in 1..=self.prefetch_degree as Addr {
            let target = line + k * line_bytes;
            if self.l2.probe(target) || self.l2_mshr.outstanding(target, ready).is_some() {
                continue;
            }
            // Prefetches are dropped rather than queued when the MSHRs
            // are busy — they must never delay demand misses.
            if self.l2_mshr.next_free(ready) > ready {
                break;
            }
            let bus_start = self.bus.schedule(ready);
            let done = bus_start + self.mem_latency;
            self.l2_mshr.register(target, ready, done);
            if let Some(ev) = self.l2.fill(target, false) {
                if ev.dirty {
                    self.bus.schedule(done);
                }
            }
            self.prefetched.insert(target);
            self.stats.prefetches_issued += 1;
        }
    }

    /// L2 access at `ready`; returns (completion cycle, initiated-miss,
    /// from-memory).
    fn access_l2(&mut self, ready: Cycle, line: Addr) -> (Cycle, bool, bool) {
        // Lines are installed in the tag array when the request is made
        // (eager state update); the MSHR holds the fill *timing*, so an
        // in-flight line must be checked before the tag array.
        let inflight = self.l2_mshr.outstanding(line, ready);
        let hit = self.l2.lookup(line);
        if hit || inflight.is_some() {
            // Usefulness accounting: first demand touch of a prefetched
            // line.
            if self.prefetched.remove(&line) {
                self.stats.prefetches_useful += 1;
            }
        }
        if let Some(fill) = inflight {
            // Coalesce with the in-flight fill.
            return (fill.max(ready + self.l2.config().hit_latency), false, true);
        }
        if hit {
            return (ready + self.l2.config().hit_latency, false, false);
        }
        let slot = self.l2_mshr.next_free(ready);
        let bus_start = self.bus.schedule(slot + self.l2.config().hit_latency);
        let done = bus_start + self.mem_latency;
        self.l2_mshr.register(line, slot, done);
        if let Some(ev) = self.l2.fill(line, false) {
            if ev.dirty {
                // Write-back occupies a bus slot after the fill.
                self.bus.schedule(done);
            }
        }
        if self.prefetch_degree > 0 {
            // Prefetches ride the bus right behind the demand transfer.
            self.prefetch_after(bus_start + 1, line);
        }
        if let Some(t) = &self.tracer {
            // The fill is emitted now but stamped at its completion
            // cycle; the tracer re-orders it into its place.
            let mut tr = t.borrow_mut();
            tr.emit(ready, EventKind::L2Miss { line });
            tr.emit(done, EventKind::L2Fill { line });
        }
        (done, true, true)
    }

    fn access_l1(
        &mut self,
        now: Cycle,
        addr: Addr,
        instr: bool,
        allocate_dirty: bool,
    ) -> MemResponse {
        let (l1, mshr) = if instr {
            (&mut self.l1i, &mut self.l1i_mshr)
        } else {
            (&mut self.l1d, &mut self.l1d_mshr)
        };
        let hit_lat = l1.config().hit_latency;
        let line = l1.line_addr(addr);
        // In-flight fills take precedence over the (eagerly updated) tag
        // array: the line is present but its data has not arrived yet.
        let inflight = mshr.outstanding(line, now);
        let hit = l1.lookup(addr);
        if let Some(fill) = inflight {
            if allocate_dirty {
                l1.mark_dirty(addr);
            }
            return MemResponse {
                complete_at: fill.max(now + hit_lat),
                from_memory: true,
                initiated_l2_miss: false,
            };
        }
        if hit {
            if allocate_dirty {
                l1.mark_dirty(addr);
            }
            return MemResponse {
                complete_at: now + hit_lat,
                from_memory: false,
                initiated_l2_miss: false,
            };
        }
        let start = mshr.next_free(now);
        let (done, initiated, from_mem) = self.access_l2(start + hit_lat, line);
        // Re-borrow after the L2 call.
        let (l1, mshr) = if instr {
            (&mut self.l1i, &mut self.l1i_mshr)
        } else {
            (&mut self.l1d, &mut self.l1d_mshr)
        };
        mshr.register(line, start, done);
        if let Some(ev) = l1.fill(addr, allocate_dirty) {
            if ev.dirty {
                // Dirty L1 victim written back into the L2.
                if !self.l2.mark_dirty(ev.line_addr) {
                    // Victim line no longer in L2: write it to memory.
                    self.bus.schedule(done);
                }
            }
        }
        MemResponse {
            complete_at: done,
            from_memory: from_mem,
            initiated_l2_miss: initiated,
        }
    }

    /// A data-side access (load or store) at `now`. Stores allocate the
    /// line dirty (write-back, write-allocate).
    pub fn access_data(&mut self, now: Cycle, addr: Addr, is_store: bool) -> MemResponse {
        let r = self.access_l1(now, addr, false, is_store);
        if r.initiated_l2_miss {
            self.stats.data_l2_misses += 1;
        }
        r
    }

    /// An instruction fetch of the line containing `pc` at `now`.
    pub fn access_ifetch(&mut self, now: Cycle, pc: Addr) -> MemResponse {
        let r = self.access_l1(now, pc, true, false);
        if r.initiated_l2_miss {
            self.stats.ifetch_l2_misses += 1;
        }
        r
    }

    fn walk(&mut self, now: Cycle, vpn: u64, walk_latency: Cycle) -> MemResponse {
        // The page-table entry is read through the L2 (walks bypass L1D).
        let pte_addr = PAGE_TABLE_BASE + vpn * 8;
        let line = self.l2.line_addr(pte_addr);
        let (done, initiated, from_mem) = self.access_l2(now, line);
        if initiated {
            self.stats.walk_l2_misses += 1;
        }
        MemResponse {
            complete_at: done + walk_latency,
            from_memory: from_mem,
            initiated_l2_miss: initiated,
        }
    }

    /// Translates a data address; on a dTLB miss performs the page walk.
    pub fn translate_data(&mut self, now: Cycle, addr: Addr) -> MemResponse {
        if self.dtlb.translate(addr) {
            return MemResponse {
                complete_at: now,
                from_memory: false,
                initiated_l2_miss: false,
            };
        }
        let vpn = self.dtlb.vpn(addr);
        let lat = self.dtlb.config().walk_latency;
        self.walk(now, vpn, lat)
    }

    /// Translates an instruction address; on an iTLB miss performs the
    /// page walk.
    pub fn translate_instr(&mut self, now: Cycle, addr: Addr) -> MemResponse {
        if self.itlb.translate(addr) {
            return MemResponse {
                complete_at: now,
                from_memory: false,
                initiated_l2_miss: false,
            };
        }
        let vpn = self.itlb.vpn(addr);
        let lat = self.itlb.config().walk_latency;
        self.walk(now, vpn, lat)
    }

    /// Earliest cycle at which any in-flight fill completes after `now`
    /// (used by the machine's quiescent fast-forward).
    pub fn next_event_after(&mut self, now: Cycle) -> Option<Cycle> {
        // next_free of a *full* file is the earliest fill; for a non-full
        // file we must scan. Cheapest correct approach: take the min over
        // the outstanding entries of each MSHR file via next_free on a
        // synthetic full check — instead expose via small scans.
        let mut earliest: Option<Cycle> = None;
        for m in [&mut self.l1i_mshr, &mut self.l1d_mshr, &mut self.l2_mshr] {
            let candidate = m.earliest_fill(now);
            earliest = match (earliest, candidate) {
                (None, c) => c,
                (Some(e), None) => Some(e),
                (Some(e), Some(c)) => Some(e.min(c)),
            };
        }
        earliest
    }

    /// L1 instruction cache statistics.
    pub fn l1i_stats(&self) -> crate::mem::CacheStats {
        self.l1i.stats()
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> crate::mem::CacheStats {
        self.l1d.stats()
    }

    /// Unified L2 statistics.
    pub fn l2_stats(&self) -> crate::mem::CacheStats {
        self.l2.stats()
    }

    /// iTLB statistics.
    pub fn itlb_stats(&self) -> crate::mem::TlbStats {
        self.itlb.stats()
    }

    /// dTLB statistics.
    pub fn dtlb_stats(&self) -> crate::mem::TlbStats {
        self.dtlb.stats()
    }

    /// Aggregate hierarchy counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Total bus transfers.
    pub fn bus_transfers(&self) -> u64 {
        self.bus.transfers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&MachineConfig::test_config())
    }

    #[test]
    fn cold_load_goes_to_memory() {
        let mut h = hierarchy();
        let r = h.access_data(0, 0x10_000, false);
        assert!(r.from_memory);
        assert!(r.initiated_l2_miss);
        // L1 (3) + L2 (10) + memory (100) plus bus scheduling.
        assert!(r.complete_at >= 100);
        assert_eq!(h.stats().data_l2_misses, 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut h = hierarchy();
        let first = h.access_data(0, 0x10_000, false);
        let r = h.access_data(first.complete_at + 1, 0x10_000, false);
        assert!(!r.from_memory);
        assert_eq!(r.complete_at, first.complete_at + 1 + 3);
    }

    #[test]
    fn overlapped_misses_to_same_line_coalesce() {
        let mut h = hierarchy();
        let a = h.access_data(0, 0x20_000, false);
        let b = h.access_data(1, 0x20_010, false); // same 64B line
        assert!(a.initiated_l2_miss);
        assert!(!b.initiated_l2_miss, "second miss coalesces");
        assert!(b.from_memory, "but still depends on memory");
        assert!(b.complete_at <= a.complete_at.max(1 + 3));
        assert_eq!(h.stats().data_l2_misses, 1);
    }

    #[test]
    fn misses_to_different_lines_overlap_on_the_bus() {
        let mut h = hierarchy();
        let a = h.access_data(0, 0x30_000, false);
        let b = h.access_data(0, 0x40_000, false);
        assert!(a.initiated_l2_miss && b.initiated_l2_miss);
        // Pipelined bus: second fill lands shortly after the first, far
        // sooner than two serialized memory latencies.
        assert!(b.complete_at < a.complete_at + 50);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = hierarchy();
        let r = h.access_ifetch(0, 0x1000);
        assert!(r.from_memory);
        let r2 = h.access_ifetch(r.complete_at, 0x1000);
        assert!(!r2.from_memory);
        assert_eq!(h.l1i_stats().hits, 1);
        assert_eq!(h.l1i_stats().misses, 1);
    }

    #[test]
    fn dtlb_walk_charges_latency_and_can_miss_l2() {
        let mut h = hierarchy();
        let r = h.translate_data(0, 0x5000_0000);
        assert!(r.from_memory, "cold page walk reads PTE from memory");
        assert!(r.complete_at >= 100 + 20);
        assert_eq!(h.stats().walk_l2_misses, 1);
        // Second access to the same page hits the TLB instantly.
        let r2 = h.translate_data(r.complete_at, 0x5000_0fff);
        assert!(!r2.from_memory);
        assert_eq!(r2.complete_at, r.complete_at);
    }

    #[test]
    fn stores_allocate_dirty_and_write_back() {
        let mut h = hierarchy();
        let cfg = MachineConfig::test_config();
        // Store to a line, then evict it by filling the same L1 set.
        h.access_data(0, 0x0, true);
        let l1_sets = cfg.l1d.sets as u64;
        let stride = l1_sets * cfg.l1d.line_bytes as u64;
        for i in 1..=cfg.l1d.ways as u64 {
            h.access_data(1000 * i, i * stride, false);
        }
        assert!(h.l1d_stats().writebacks >= 1);
    }

    #[test]
    fn stream_prefetcher_covers_sequential_misses() {
        let mut cfg = MachineConfig::test_config();
        cfg.l2_prefetch_degree = 4;
        let mut h = Hierarchy::new(&cfg);
        // Walk 32 sequential lines: with degree-4 prefetch most demand
        // accesses after the first should find their line ready.
        let mut now = 0;
        let mut initiated = 0;
        for i in 0..32u64 {
            let r = h.access_data(now, 0x80_0000 + i * 64, false);
            if r.initiated_l2_miss {
                initiated += 1;
            }
            now = r.complete_at + 50;
        }
        assert!(
            initiated < 16,
            "prefetching should absorb most sequential misses: {initiated}"
        );
        let s = h.stats();
        assert!(s.prefetches_issued > 8, "issued {}", s.prefetches_issued);
        assert!(
            s.prefetches_useful > 4,
            "useful {} of {}",
            s.prefetches_useful,
            s.prefetches_issued
        );
    }

    #[test]
    fn prefetcher_off_by_default() {
        let mut h = hierarchy();
        let mut now = 0;
        for i in 0..8u64 {
            let r = h.access_data(now, 0x90_0000 + i * 64, false);
            assert!(r.initiated_l2_miss, "every sequential line misses");
            now = r.complete_at + 10;
        }
        assert_eq!(h.stats().prefetches_issued, 0);
    }

    #[test]
    fn next_event_after_reports_inflight_fill() {
        let mut h = hierarchy();
        let r = h.access_data(0, 0x60_000, false);
        let next = h.next_event_after(0).expect("fill in flight");
        assert!(next <= r.complete_at);
        assert!(h.next_event_after(r.complete_at + 1).is_none());
    }
}
