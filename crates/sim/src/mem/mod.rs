//! Memory subsystem: caches, MSHRs, TLBs, the bus and the combined
//! hierarchy.

mod bus;
mod cache;
mod hierarchy;
mod mshr;
mod tlb;

pub use bus::Bus;
pub use cache::{Cache, CacheStats, Eviction};
pub use hierarchy::{Hierarchy, HierarchyStats, MemResponse};
pub use mshr::MshrFile;
pub use tlb::{Tlb, TlbStats};
