//! Miss status holding registers — outstanding-miss tracking that enables
//! overlapped (clustered) cache misses.

use crate::types::{Addr, Cycle};

/// Tracks in-flight line fills for one cache level.
///
/// A second miss to a line that is already being fetched *coalesces*: it
/// completes when the original fill arrives and does not issue a new
/// request. This is the behaviour behind the paper's note that only the
/// first miss of each overlapped group is counted.
///
/// Entries expire at query time: every query first clears slots whose
/// fill time has passed. The eagerness matters — one file is queried at
/// the per-request access times of its cache level, which are *not*
/// monotone across requests, and an expiry applied at a later timestamp
/// must stay applied for a subsequent earlier-timestamp query (the
/// observable contract of the address-keyed map this file replaced).
///
/// # Examples
///
/// ```
/// use soe_sim::mem::MshrFile;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.outstanding(0x40, 0), None);
/// m.register(0x40, 0, 100);
/// assert_eq!(m.outstanding(0x40, 0), Some(100));
/// assert_eq!(m.outstanding(0x40, 101), None); // fill arrived
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    // A fixed slot per MSHR: `(line address, fill cycle)`. A dead slot
    // is `(0, 0)`; expiry zeroes slots in place, so no query ever
    // compacts or allocates. The files are small (4-16 slots), making
    // linear scans cheaper than any map — and index order ties break
    // identically on every run, keeping fill timing bit-deterministic.
    slots: Vec<(Addr, Cycle)>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        Self {
            slots: vec![(0, 0); capacity],
        }
    }

    fn expire(&mut self, now: Cycle) {
        for s in &mut self.slots {
            if s.1 <= now {
                *s = (0, 0);
            }
        }
    }

    /// If `line_addr` is already being fetched at `now`, returns the cycle
    /// its fill completes.
    pub fn outstanding(&mut self, line_addr: Addr, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        self.slots
            .iter()
            .find(|&&(a, f)| a == line_addr && f > now)
            .map(|&(_, f)| f)
    }

    /// Earliest cycle at which a free entry exists, given `now`.
    /// Returns `now` when an entry is free immediately.
    pub fn next_free(&mut self, now: Cycle) -> Cycle {
        self.expire(now);
        let mut live = 0;
        let mut min_fill = Cycle::MAX;
        for &(_, f) in &self.slots {
            if f > now {
                live += 1;
                min_fill = min_fill.min(f);
            }
        }
        if live < self.slots.len() {
            now
        } else {
            // The file is full here (live == capacity >= 1), so a
            // minimum live fill always exists.
            min_fill
        }
    }

    /// Registers a new in-flight fill: the request occupies an entry from
    /// `start` until `fill_at`.
    ///
    /// # Panics
    ///
    /// Panics if the file is still full at `start` — the caller must
    /// respect [`MshrFile::next_free`].
    pub fn register(&mut self, line_addr: Addr, start: Cycle, fill_at: Cycle) {
        self.expire(start);
        let mut live = 0;
        let mut same_addr = None;
        let mut free_slot = None;
        for (i, &(a, f)) in self.slots.iter().enumerate() {
            if f > start {
                live += 1;
                if a == line_addr {
                    // A live fill for the same line: the registration
                    // replaces it (the map semantics this file had when
                    // it was keyed by address).
                    same_addr = Some(i);
                }
            } else if free_slot.is_none() {
                free_slot = Some(i);
            }
        }
        assert!(
            live < self.slots.len(),
            "MSHR file is full; caller must wait for next_free()"
        );
        // `live < capacity` guarantees an expired slot exists.
        let slot = same_addr.or(free_slot).unwrap_or(0);
        // soe-lint: allow(slice-index): slot indices come from enumerate() over this vector
        self.slots[slot] = (line_addr, fill_at);
    }

    /// Earliest fill completion strictly after `now`, if any fill is in
    /// flight — feeds the machine's event calendar.
    pub fn earliest_fill(&mut self, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        self.slots
            .iter()
            .filter(|&&(_, f)| f > now)
            .map(|&(_, f)| f)
            .min()
    }

    /// Number of live entries at `now`.
    pub fn len(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.slots.iter().filter(|&&(_, f)| f > now).count()
    }

    /// Whether the file has no live entries at `now`.
    pub fn is_empty(&mut self, now: Cycle) -> bool {
        self.len(now) == 0
    }

    /// Drops all in-flight entries (used only by tests and machine reset;
    /// SOE thread switches deliberately do *not* cancel fills).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = (0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_to_same_line() {
        let mut m = MshrFile::new(4);
        m.register(0x40, 0, 500);
        assert_eq!(m.outstanding(0x40, 10), Some(500));
        assert_eq!(m.outstanding(0x80, 10), None);
    }

    #[test]
    fn entries_expire_after_fill() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        assert_eq!(m.len(50), 1);
        assert_eq!(m.len(100), 0, "entry expires once the fill arrives");
    }

    #[test]
    fn next_free_waits_for_earliest_fill() {
        let mut m = MshrFile::new(2);
        m.register(0x40, 0, 300);
        m.register(0x80, 0, 200);
        assert_eq!(m.next_free(50), 200);
        // After 200 the 0x80 entry is gone.
        assert_eq!(m.next_free(200), 200);
    }

    #[test]
    fn expiry_applied_at_a_later_time_sticks_for_earlier_queries() {
        // Query times are not monotone across requests; an entry expired
        // by a later-timestamp query must stay gone.
        let mut m = MshrFile::new(2);
        m.register(0x40, 0, 100);
        assert_eq!(m.len(150), 0); // expires the entry
        assert_eq!(m.outstanding(0x40, 50), None, "already expired at 150");
    }

    #[test]
    #[should_panic(expected = "full")]
    fn over_registering_panics() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        m.register(0x80, 0, 100);
    }

    #[test]
    fn clear_empties() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        m.clear();
        assert!(m.is_empty(0));
    }
}
