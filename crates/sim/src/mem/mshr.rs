//! Miss status holding registers — outstanding-miss tracking that enables
//! overlapped (clustered) cache misses.

use std::collections::BTreeMap;

use crate::types::{Addr, Cycle};

/// Tracks in-flight line fills for one cache level.
///
/// A second miss to a line that is already being fetched *coalesces*: it
/// completes when the original fill arrives and does not issue a new
/// request. This is the behaviour behind the paper's note that only the
/// first miss of each overlapped group is counted.
///
/// Entries expire lazily: a registration whose fill time has passed is
/// treated as free capacity.
///
/// # Examples
///
/// ```
/// use soe_sim::mem::MshrFile;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.outstanding(0x40, 0), None);
/// m.register(0x40, 0, 100);
/// assert_eq!(m.outstanding(0x40, 0), Some(100));
/// assert_eq!(m.outstanding(0x40, 101), None); // fill arrived
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // BTreeMap, not HashMap: `values().min()` ties break identically on
    // every run, keeping fill timing bit-deterministic.
    inflight: BTreeMap<Addr, Cycle>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        Self {
            capacity,
            inflight: BTreeMap::new(),
        }
    }

    fn expire(&mut self, now: Cycle) {
        self.inflight.retain(|_, fill| *fill > now);
    }

    /// If `line_addr` is already being fetched at `now`, returns the cycle
    /// its fill completes.
    pub fn outstanding(&mut self, line_addr: Addr, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        self.inflight.get(&line_addr).copied()
    }

    /// Earliest cycle at which a free entry exists, given `now`.
    /// Returns `now` when an entry is free immediately.
    pub fn next_free(&mut self, now: Cycle) -> Cycle {
        self.expire(now);
        if self.inflight.len() < self.capacity {
            now
        } else {
            // The file is full here (len == capacity >= 1), so min()
            // is always Some; the fallback is unreachable.
            self.inflight.values().copied().min().unwrap_or(now)
        }
    }

    /// Registers a new in-flight fill: the request occupies an entry from
    /// `start` until `fill_at`.
    ///
    /// # Panics
    ///
    /// Panics if the file is still full at `start` — the caller must
    /// respect [`MshrFile::next_free`].
    pub fn register(&mut self, line_addr: Addr, start: Cycle, fill_at: Cycle) {
        self.expire(start);
        assert!(
            self.inflight.len() < self.capacity,
            "MSHR file is full; caller must wait for next_free()"
        );
        self.inflight.insert(line_addr, fill_at);
    }

    /// Earliest fill completion strictly after `now`, if any fill is in
    /// flight — used by the machine's quiescent fast-forward.
    pub fn earliest_fill(&mut self, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        self.inflight.values().copied().min()
    }

    /// Number of live entries at `now`.
    pub fn len(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.inflight.len()
    }

    /// Whether the file has no live entries at `now`.
    pub fn is_empty(&mut self, now: Cycle) -> bool {
        self.len(now) == 0
    }

    /// Drops all in-flight entries (used only by tests and machine reset;
    /// SOE thread switches deliberately do *not* cancel fills).
    pub fn clear(&mut self) {
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_to_same_line() {
        let mut m = MshrFile::new(4);
        m.register(0x40, 0, 500);
        assert_eq!(m.outstanding(0x40, 10), Some(500));
        assert_eq!(m.outstanding(0x80, 10), None);
    }

    #[test]
    fn entries_expire_after_fill() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        assert_eq!(m.len(50), 1);
        assert_eq!(m.len(100), 0, "entry expires once the fill arrives");
    }

    #[test]
    fn next_free_waits_for_earliest_fill() {
        let mut m = MshrFile::new(2);
        m.register(0x40, 0, 300);
        m.register(0x80, 0, 200);
        assert_eq!(m.next_free(50), 200);
        // After 200 the 0x80 entry is gone.
        assert_eq!(m.next_free(200), 200);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn over_registering_panics() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        m.register(0x80, 0, 100);
    }

    #[test]
    fn clear_empties() {
        let mut m = MshrFile::new(1);
        m.register(0x40, 0, 100);
        m.clear();
        assert!(m.is_empty(0));
    }
}
