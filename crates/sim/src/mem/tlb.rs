//! Instruction/data TLBs with page walks through the cache hierarchy.

use serde::{Deserialize, Serialize};

use crate::config::TlbConfig;
use crate::types::Addr;

/// Hit/miss counters of one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed (page walks).
    pub misses: u64,
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// The TLB itself is a pure presence structure; the page-walk *timing*
/// (walk latency plus a memory-hierarchy access for the page-table entry,
/// which may itself miss the L2 and trigger an SOE switch) is modelled by
/// [`crate::mem::Hierarchy::translate_data`] and
/// [`crate::mem::Hierarchy::translate_instr`].
///
/// # Examples
///
/// ```
/// use soe_sim::config::TlbConfig;
/// use soe_sim::mem::Tlb;
///
/// let mut t = Tlb::new(TlbConfig { entries: 2, page_bits: 12, walk_latency: 20 });
/// assert!(!t.translate(0x1000)); // cold miss
/// assert!(t.translate(0x1fff)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u64, u64)>, // (vpn, last_use)
    use_counter: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Self {
            cfg,
            entries: Vec::new(),
            use_counter: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Virtual page number of `addr`.
    pub fn vpn(&self, addr: Addr) -> u64 {
        addr >> self.cfg.page_bits
    }

    /// Translates `addr`: returns `true` on a TLB hit. A miss installs the
    /// entry (the caller charges the walk latency).
    pub fn translate(&mut self, addr: Addr) -> bool {
        self.use_counter += 1;
        let vpn = self.vpn(addr);
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.use_counter;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, u))| *u)
                .map(|(i, _)| i)
                // soe-lint: allow(panic-unwrap): len == cfg.entries >= 1 in this branch, so min exists
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.use_counter));
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bits: 12,
            walk_latency: 20,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.translate(0x0));
        assert!(t.translate(0xfff));
        assert!(!t.translate(0x1000));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.translate(0x0000); // page 0
        t.translate(0x1000); // page 1
        t.translate(0x0000); // touch page 0
        t.translate(0x2000); // page 2 evicts page 1
        assert!(t.translate(0x0000), "page 0 retained");
        assert!(!t.translate(0x1000), "page 1 evicted");
    }

    #[test]
    fn vpn_uses_page_bits() {
        let t = tiny();
        assert_eq!(t.vpn(0x3fff), 3);
    }
}
