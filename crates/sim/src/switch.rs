//! The thread-switch policy interface — where the paper's contribution
//! plugs into the machine.
//!
//! The machine exposes three decision points to a [`SwitchPolicy`]:
//!
//! * [`SwitchPolicy::on_miss_stall`] — the head of the ROB is flagged as
//!   handling an unresolved L2 miss (the classic SOE switch event),
//! * [`SwitchPolicy::after_retire`] — per retired instruction (where the
//!   fairness mechanism's deficit counters live),
//! * [`SwitchPolicy::each_cycle`] — per running cycle (where the
//!   maximum-cycles quota and the Δ-periodic recalculation live).
//!
//! `soe-core` implements the paper's policies on top of this trait; the
//! simulator ships only the two trivial ones ([`NeverSwitch`] for
//! single-thread reference runs and [`SwitchOnEvent`] for plain F = 0
//! SOE).

use crate::types::{Cycle, ThreadId};

/// Whether to keep the current thread on the core or switch it out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Keep running the current thread.
    Continue,
    /// Switch the current thread out.
    Switch,
}

/// Why a thread was switched out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// The head of the ROB stalled on an unresolved L2 miss — the switch
    /// hides a memory access.
    MissEvent,
    /// The policy forced the switch (fairness quota, time slice, ...);
    /// the switch hides nothing and its latency is pure overhead.
    Forced,
    /// Software requested the switch with an explicit hint instruction
    /// (`pause`): the thread expects to make no progress for a while.
    Hint,
}

/// A thread-switch policy observed and consulted by the machine.
///
/// All hooks have no-op/neutral defaults so policies only override the
/// decision points they care about.
pub trait SwitchPolicy {
    /// Display name (used in experiment reports).
    fn name(&self) -> &str;

    /// A thread has been switched in; it starts fetching at `now`.
    fn on_switch_in(&mut self, tid: ThreadId, now: Cycle) {
        let _ = (tid, now);
    }

    /// A thread has been switched out at `now` for `reason`.
    ///
    /// Counting `MissEvent` reasons here yields the paper's `Misses_j`
    /// counter — only misses that actually caused a switch are counted,
    /// which also de-duplicates overlapped miss clusters.
    fn on_switch_out(&mut self, tid: ThreadId, now: Cycle, reason: SwitchReason) {
        let _ = (tid, now, reason);
    }

    /// An instruction from `tid` just retired. Returning
    /// [`SwitchDecision::Switch`] forces a switch after this instruction.
    fn after_retire(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        let _ = (tid, now);
        SwitchDecision::Continue
    }

    /// The next-to-retire micro-op of `tid` waits on an unresolved L2
    /// miss. Called once per stall episode. Returning `Switch` hides the
    /// stall behind another thread.
    fn on_miss_stall(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        let _ = (tid, now);
        SwitchDecision::Switch
    }

    /// Observed event latency: just before [`SwitchPolicy::on_miss_stall`]
    /// the machine reports how many more cycles the stalling access needs
    /// — the exposed (post-overlap) miss latency a hardware counter would
    /// measure. Section 6 of the paper proposes measuring event latencies
    /// this way instead of assuming a fixed `Miss_lat`; policies that
    /// support variable-latency events use this hook.
    fn observe_miss_latency(&mut self, tid: ThreadId, remaining: Cycle) {
        let _ = (tid, remaining);
    }

    /// A `pause` switch-hint instruction from `tid` just retired.
    /// Returning `Switch` honors the hint. The default honors hints for
    /// multithreaded policies via [`SwitchPolicy::on_miss_stall`]'s
    /// default-switch philosophy; single-thread policies override.
    fn on_pause(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        let _ = (tid, now);
        SwitchDecision::Switch
    }

    /// Called once per cycle while `tid` occupies the core (not during
    /// switch drains). During provably quiescent stalls the machine may
    /// fast-forward, so consecutive calls can have cycle gaps —
    /// implementations must reason from the `now` timestamp, not from
    /// call counts.
    fn each_cycle(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        let _ = (tid, now);
        SwitchDecision::Continue
    }

    /// Select which thread to switch *in* now that `current` has been
    /// switched out. `threads` is the roster size; every returned id must
    /// satisfy `id.index() < threads` — out-of-range picks are ignored.
    ///
    /// Returning `None` — the default — keeps the machine's fixed
    /// rotation (`current + 1 mod threads`), which is what the paper's
    /// two-thread policies rely on. Arbitration disciplines (rotating
    /// grant pointers, usage banning) override this to skip contexts
    /// that are busy or ineligible; the machine falls back to the
    /// rotation whenever the pick is absent or out of range, so a buggy
    /// policy degrades to round-robin instead of wedging the core.
    fn pick_next(&mut self, current: ThreadId, threads: usize, now: Cycle) -> Option<ThreadId> {
        let _ = (current, threads, now);
        None
    }

    /// The measurement window starts at `now`: warmup is over and the
    /// machine's statistics were just reset. Policies drop per-window
    /// accounting here (recorded history, conservation counters) so that
    /// post-run oracles see exactly the measured window; long-lived
    /// arbitration state (grant pointers, deficits) should survive.
    /// Default: no-op.
    fn on_measure_start(&mut self, now: Cycle) {
        let _ = now;
    }

    /// The next cycle at or after `now` at which
    /// [`SwitchPolicy::each_cycle`] could do anything — return `Switch`
    /// or mutate policy state (a Δ-window recalculation, a cycle-quota
    /// expiry). `None` — the default — means "never": `each_cycle` is a
    /// pure `Continue` between machine events.
    ///
    /// The machine treats this as an event source for its quiescent
    /// fast-forward: a jump over a stall stops at the returned cycle so
    /// the decision fires at exactly the cycle it would have fired at
    /// in a tick-by-tick run. Implementations with any time-scheduled
    /// behaviour in `each_cycle` must override this, or fast-forward
    /// runs will take those decisions late.
    fn next_decision_at(&self, tid: ThreadId, now: Cycle) -> Option<Cycle> {
        let _ = (tid, now);
        None
    }

    /// Downcast hook: policies that accumulate state worth reading back
    /// after a run (e.g. the fairness engine's per-window estimates)
    /// return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable counterpart of [`SwitchPolicy::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Never switches — the policy used for single-thread reference runs
/// (`IPC_ST` measurement): the core simply waits out every miss stall.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverSwitch;

impl NeverSwitch {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SwitchPolicy for NeverSwitch {
    fn name(&self) -> &str {
        "single-thread"
    }
    fn on_miss_stall(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        SwitchDecision::Continue
    }
    fn on_pause(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        SwitchDecision::Continue
    }
}

/// Plain switch-on-event multithreading (the paper's `F = 0` baseline):
/// switch on every L2-miss stall, never force anything else.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchOnEvent;

impl SwitchOnEvent {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SwitchPolicy for SwitchOnEvent {
    fn name(&self) -> &str {
        "soe(F=0)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_switch_always_continues() {
        let mut p = NeverSwitch::new();
        assert_eq!(
            p.on_miss_stall(ThreadId::new(0), 10),
            SwitchDecision::Continue
        );
        assert_eq!(
            p.after_retire(ThreadId::new(0), 10),
            SwitchDecision::Continue
        );
    }

    #[test]
    fn switch_on_event_switches_on_miss_only() {
        let mut p = SwitchOnEvent::new();
        assert_eq!(
            p.on_miss_stall(ThreadId::new(0), 10),
            SwitchDecision::Switch
        );
        assert_eq!(
            p.after_retire(ThreadId::new(0), 10),
            SwitchDecision::Continue
        );
        assert_eq!(p.each_cycle(ThreadId::new(0), 10), SwitchDecision::Continue);
    }

    #[test]
    fn default_pick_next_defers_to_machine_rotation() {
        let mut p = SwitchOnEvent::new();
        assert_eq!(p.pick_next(ThreadId::new(0), 4, 10), None);
        // on_measure_start is a no-op by default — just must not panic.
        p.on_measure_start(10);
    }
}
