//! The re-order buffer: in-order allocation and retirement around an
//! out-of-order execution window.

use std::collections::VecDeque;

use crate::types::{Cycle, InstrIndex};
use crate::uop::{Uop, UopKind};

/// Execution state of one ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched into the reservation station, waiting for operands or a
    /// functional unit.
    Waiting,
    /// Issued; completes at the contained cycle.
    Executing(Cycle),
    /// Completed (result available to dependents).
    Done,
}

/// One in-flight micro-op.
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Dynamic stream position.
    pub index: InstrIndex,
    /// The micro-op.
    pub uop: Uop,
    /// Execution state.
    pub state: EntryState,
    /// True while the entry's data depends on an unresolved L2 miss —
    /// the paper's in-ROB miss flag that triggers SOE switches when it
    /// reaches the retirement head.
    pub mem_pending: bool,
    /// Whether the branch was mispredicted at fetch.
    pub mispredicted: bool,
}

/// The re-order buffer. Entries are stored contiguously by stream
/// position: the entry for position `i` lives at offset `i - head_index`.
///
/// # Examples
///
/// ```
/// use soe_sim::backend::{EntryState, Rob};
/// use soe_sim::{Uop, UopKind};
///
/// let mut rob = Rob::new(4);
/// rob.push(0, Uop::new(UopKind::Alu, 0), false);
/// assert_eq!(rob.len(), 1);
/// assert!(rob.producer_done(1, 2)); // producers before the window count as done
/// assert!(!rob.producer_done(1, 1)); // entry 0 not finished yet
/// ```
#[derive(Debug)]
pub struct Rob {
    head_index: InstrIndex,
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Self {
            head_index: 0,
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Stream position of the oldest in-flight entry (valid even when
    /// empty: the next position to allocate).
    pub fn head_index(&self) -> InstrIndex {
        self.head_index
    }

    /// Allocates an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or `index` is not the next sequential
    /// position.
    pub fn push(&mut self, index: InstrIndex, uop: Uop, mispredicted: bool) {
        assert!(!self.is_full(), "ROB overflow");
        assert_eq!(
            index,
            self.head_index + self.entries.len() as u64,
            "ROB allocation must be sequential"
        );
        self.entries.push_back(RobEntry {
            index,
            uop,
            state: EntryState::Waiting,
            mem_pending: false,
            mispredicted,
        });
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Retires (removes) the oldest entry, or returns `None` when the
    /// ROB is empty.
    ///
    /// # Panics
    ///
    /// Panics if the head exists but is not `Done` — retiring an
    /// incomplete entry is a pipeline-ordering bug, never a recoverable
    /// condition.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front()?;
        assert_eq!(e.state, EntryState::Done, "retiring incomplete entry");
        self.head_index += 1;
        Some(e)
    }

    /// Shared access by stream position.
    pub fn get(&self, index: InstrIndex) -> Option<&RobEntry> {
        let off = index.checked_sub(self.head_index)?;
        self.entries.get(off as usize)
    }

    /// Mutable access by stream position.
    pub fn get_mut(&mut self, index: InstrIndex) -> Option<&mut RobEntry> {
        let off = index.checked_sub(self.head_index)?;
        self.entries.get_mut(off as usize)
    }

    /// Whether the producer `dist` positions before `consumer` has its
    /// result available (`dist == 0` means no dependence; producers before
    /// the window have retired).
    pub fn producer_done(&self, consumer: InstrIndex, dist: u32) -> bool {
        if dist == 0 {
            return true;
        }
        let Some(p) = consumer.checked_sub(dist as u64) else {
            return true; // before the start of the program
        };
        if p < self.head_index {
            return true;
        }
        match self.get(p) {
            Some(e) => e.state == EntryState::Done,
            // Producer not yet renamed (can happen for fetch-buffer
            // consumers, not for allocated entries).
            None => false,
        }
    }

    /// Finds the youngest store older than `load_index` with the same data
    /// address, for store-to-load forwarding. Returns its state.
    pub fn older_store_to(&self, load_index: InstrIndex, addr: u64) -> Option<&RobEntry> {
        self.entries
            .iter()
            .rev()
            .filter(|e| e.index < load_index)
            .find(|e| e.uop.kind == UopKind::Store && e.uop.mem_addr == Some(addr))
    }

    /// Iterates over in-flight entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Squashes every in-flight entry and repoints the window at
    /// `restart_index` (thread switch or full-pipeline flush).
    pub fn squash(&mut self, restart_index: InstrIndex) {
        self.entries.clear();
        self.head_index = restart_index;
    }

    /// Occupancy counts: (waiting-in-RS, loads, stores).
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let mut waiting = 0;
        let mut loads = 0;
        let mut stores = 0;
        for e in &self.entries {
            if e.state == EntryState::Waiting {
                waiting += 1;
            }
            match e.uop.kind {
                UopKind::Load => loads += 1,
                UopKind::Store => stores += 1,
                _ => {}
            }
        }
        (waiting, loads, stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(pc: u64) -> Uop {
        Uop::new(UopKind::Alu, pc)
    }

    #[test]
    fn sequential_allocation_and_retirement() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        rob.get_mut(0).unwrap().state = EntryState::Done;
        let e = rob.pop_head().expect("head exists");
        assert_eq!(e.index, 0);
        assert_eq!(rob.head_index(), 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn non_sequential_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(5, alu(0), false);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn retiring_waiting_entry_panics() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        let _ = rob.pop_head();
    }

    #[test]
    fn producer_tracking() {
        let mut rob = Rob::new(8);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        assert!(!rob.producer_done(1, 1));
        rob.get_mut(0).unwrap().state = EntryState::Done;
        assert!(rob.producer_done(1, 1));
        assert!(rob.producer_done(1, 5), "pre-program producers are done");
        assert!(rob.producer_done(1, 0), "no dependence");
    }

    #[test]
    fn retired_producers_count_as_done() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.get_mut(0).unwrap().state = EntryState::Done;
        let _ = rob.pop_head();
        rob.push(1, alu(4), false);
        assert!(rob.producer_done(1, 1));
    }

    #[test]
    fn store_forwarding_finds_youngest_older_store() {
        let mut rob = Rob::new(8);
        rob.push(0, Uop::new(UopKind::Store, 0).with_mem(0x100), false);
        rob.push(1, Uop::new(UopKind::Store, 4).with_mem(0x100), false);
        rob.push(2, Uop::new(UopKind::Load, 8).with_mem(0x100), false);
        let s = rob.older_store_to(2, 0x100).expect("store found");
        assert_eq!(s.index, 1, "youngest older store wins");
        assert!(rob.older_store_to(2, 0x200).is_none());
        assert!(rob.older_store_to(0, 0x100).is_none(), "no younger stores");
    }

    #[test]
    fn squash_empties_and_repoints() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.squash(42);
        assert!(rob.is_empty());
        assert_eq!(rob.head_index(), 42);
        rob.push(42, alu(0), false);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn occupancy_counts_kinds() {
        let mut rob = Rob::new(8);
        rob.push(0, Uop::new(UopKind::Load, 0).with_mem(0x1), false);
        rob.push(1, Uop::new(UopKind::Store, 4).with_mem(0x2), false);
        rob.push(2, alu(8), false);
        rob.get_mut(2).unwrap().state = EntryState::Done;
        let (waiting, loads, stores) = rob.occupancy();
        assert_eq!((waiting, loads, stores), (2, 1, 1));
    }
}
