//! The re-order buffer: in-order allocation and retirement around an
//! out-of-order execution window.
//!
//! Besides the entries themselves the buffer maintains several pieces
//! of derived state incrementally, so the per-cycle pipeline stages
//! never need an O(ROB) scan:
//!
//! * a completion heap (`completions`) of `(completion cycle, stream
//!   position)` pairs, which makes "what completes now?"
//!   ([`Rob::complete_until`]) and "when does the next thing
//!   complete?" ([`Rob::earliest_completion`]) cheap — the latter
//!   feeds the machine's event calendar as the `RobComplete` wake
//!   source;
//! * occupancy counters (waiting / loads / stores) for rename-stage
//!   resource checks ([`Rob::occupancy`]);
//! * an issue-candidate tracker — a retry queue plus a retry heap
//!   keyed by each blocked entry's proven earliest-readiness cycle
//!   ([`RobEntry::not_before`], recorded via [`Rob::defer_issue`]) — so
//!   the issue scan ([`Rob::collect_issue_candidates`]) examines only
//!   entries that could actually issue this cycle, instead of
//!   re-checking every waiting entry every cycle;
//! * the stream positions of in-flight stores, so memory
//!   disambiguation ([`Rob::older_store_to`]) scans the store buffer,
//!   not the whole window;
//! * all state transitions funnel through [`Rob::push`],
//!   [`Rob::set_executing`], [`Rob::complete_until`], [`Rob::pop_head`]
//!   and [`Rob::squash`] so the derived state cannot drift from the
//!   entries. Entry state is therefore read-only from the outside.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::types::{Cycle, InstrIndex};
use crate::uop::{Uop, UopKind};

/// Execution state of one ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched into the reservation station, waiting for operands or a
    /// functional unit.
    Waiting,
    /// Issued; completes at the contained cycle.
    Executing(Cycle),
    /// Completed (result available to dependents).
    Done,
}

/// One in-flight micro-op.
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Dynamic stream position.
    pub index: InstrIndex,
    /// The micro-op.
    pub uop: Uop,
    /// Execution state.
    pub state: EntryState,
    /// True while the entry's data depends on an unresolved L2 miss —
    /// the paper's in-ROB miss flag that triggers SOE switches when it
    /// reaches the retirement head.
    pub mem_pending: bool,
    /// Whether the branch was mispredicted at fetch.
    pub mispredicted: bool,
    /// Issue-readiness memo: a proven lower bound on the cycle at which
    /// this entry could next pass the issue-readiness checks (operand
    /// availability, memory disambiguation). The issue stage skips the
    /// entry with a single comparison before then. `0` means "no bound
    /// recorded"; [`Cycle::MAX`] means "parked on a producer". Maintained
    /// via [`Rob::defer_issue`] and [`Rob::park_on_producer`].
    pub not_before: Cycle,
    /// Head of the intrusive list of entries parked on this one (their
    /// first blocking producer): they re-enter the issue scan when this
    /// entry issues and its completion cycle becomes known.
    waiters_head: Option<InstrIndex>,
    /// Link in the waiter list this entry is parked in, if any.
    next_waiter: Option<InstrIndex>,
}

/// The re-order buffer. Entries are stored contiguously by stream
/// position: the entry for position `i` lives at offset `i - head_index`.
///
/// # Examples
///
/// ```
/// use soe_sim::backend::{EntryState, Rob};
/// use soe_sim::{Uop, UopKind};
///
/// let mut rob = Rob::new(4);
/// rob.push(0, Uop::new(UopKind::Alu, 0), false);
/// assert_eq!(rob.len(), 1);
/// assert!(rob.producer_done(1, 2)); // producers before the window count as done
/// assert!(!rob.producer_done(1, 1)); // entry 0 not finished yet
/// rob.set_executing(0, 5, false);
/// assert_eq!(rob.earliest_completion(), Some(5));
/// ```
#[derive(Debug)]
pub struct Rob {
    head_index: InstrIndex,
    entries: VecDeque<RobEntry>,
    capacity: usize,
    /// Completion heap: `(completion cycle, stream position)` of every
    /// `Executing` entry, min-first. Every `Executing` entry has exactly
    /// one slot here; squash empties it, so no stale entry survives.
    completions: BinaryHeap<Reverse<(Cycle, InstrIndex)>>,
    /// Number of entries in `EntryState::Waiting`.
    waiting: usize,
    /// Number of in-flight loads (any state).
    loads: usize,
    /// Number of in-flight stores (any state).
    stores: usize,
    /// Stream positions to examine at the next issue scan — an
    /// unordered superset of the issuable `Waiting` entries, pruned and
    /// sorted by [`Rob::collect_issue_candidates`].
    retry_q: Vec<InstrIndex>,
    /// Retry heap: `(proven earliest-readiness cycle, stream position)`
    /// of blocked `Waiting` entries, min-first (the heap twin of
    /// `completions`). Entries drain back into `retry_q` on expiry.
    deferred: BinaryHeap<Reverse<(Cycle, InstrIndex)>>,
    /// Stream positions of in-flight stores, oldest first.
    store_indices: VecDeque<InstrIndex>,
}

/// Why a `Waiting` entry cannot issue yet, as determined by
/// [`Rob::producer_blocker`]: either a proven earliest-readiness cycle
/// (park in the retry calendar via [`Rob::defer_issue`]) or a
/// still-waiting producer whose completion cycle is unknown (park on
/// the producer via [`Rob::park_on_producer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocker {
    /// The entry cannot pass the issue checks before this cycle.
    At(Cycle),
    /// The entry waits on this still-unissued producer.
    On(InstrIndex),
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Self {
            head_index: 0,
            entries: VecDeque::with_capacity(capacity),
            capacity,
            completions: BinaryHeap::with_capacity(capacity),
            waiting: 0,
            loads: 0,
            stores: 0,
            retry_q: Vec::with_capacity(capacity),
            deferred: BinaryHeap::with_capacity(capacity),
            store_indices: VecDeque::new(),
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Stream position of the oldest in-flight entry (valid even when
    /// empty: the next position to allocate).
    pub fn head_index(&self) -> InstrIndex {
        self.head_index
    }

    /// Allocates an entry at the tail (in `Waiting` state).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or `index` is not the next sequential
    /// position.
    pub fn push(&mut self, index: InstrIndex, uop: Uop, mispredicted: bool) {
        assert!(!self.is_full(), "ROB overflow");
        assert_eq!(
            index,
            self.head_index + self.entries.len() as u64,
            "ROB allocation must be sequential"
        );
        match uop.kind {
            UopKind::Load => self.loads += 1,
            UopKind::Store => {
                self.stores += 1;
                self.store_indices.push_back(index);
            }
            _ => {}
        }
        self.waiting += 1;
        self.retry_q.push(index);
        self.entries.push_back(RobEntry {
            index,
            uop,
            state: EntryState::Waiting,
            mem_pending: false,
            mispredicted,
            not_before: 0,
            waiters_head: None,
            next_waiter: None,
        });
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Retires (removes) the oldest entry, or returns `None` when the
    /// ROB is empty.
    ///
    /// # Panics
    ///
    /// Panics if the head exists but is not `Done` — retiring an
    /// incomplete entry is a pipeline-ordering bug, never a recoverable
    /// condition.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front()?;
        assert_eq!(e.state, EntryState::Done, "retiring incomplete entry");
        match e.uop.kind {
            UopKind::Load => self.loads -= 1,
            UopKind::Store => {
                self.stores -= 1;
                // Stores retire in order, so the oldest tracked store is
                // this one; the guard keeps a hypothetical drift
                // panic-free.
                if self.store_indices.front() == Some(&e.index) {
                    self.store_indices.pop_front();
                }
            }
            _ => {}
        }
        self.head_index += 1;
        Some(e)
    }

    /// Shared access by stream position.
    pub fn get(&self, index: InstrIndex) -> Option<&RobEntry> {
        let off = index.checked_sub(self.head_index)?;
        self.entries.get(off as usize)
    }

    /// Issues entry `index`: `Waiting` → `Executing(done)`, registering
    /// it in the completion calendar. Returns whether the transition
    /// happened (`false` if the entry vanished — a squash raced the
    /// caller's snapshot — or was not `Waiting`).
    pub fn set_executing(&mut self, index: InstrIndex, done: Cycle, mem_pending: bool) -> bool {
        let Some(off) = index.checked_sub(self.head_index) else {
            return false;
        };
        let Some(e) = self.entries.get_mut(off as usize) else {
            return false;
        };
        if e.state != EntryState::Waiting {
            debug_assert!(false, "issuing entry {index} twice");
            return false;
        }
        e.state = EntryState::Executing(done);
        e.mem_pending = mem_pending;
        let waiters = e.waiters_head.take();
        self.waiting -= 1;
        self.completions.push(Reverse((done, index)));
        // The issue's completion cycle is now known: everything parked
        // on this entry moves to the retry calendar at that cycle (its
        // result cannot be available sooner).
        if waiters.is_some() {
            self.wake_waiters(waiters, done);
        }
        true
    }

    /// Moves an intrusive waiter chain into the retry heap at cycle
    /// `at`.
    fn wake_waiters(&mut self, mut next: Option<InstrIndex>, at: Cycle) {
        while let Some(c) = next {
            next = None;
            if let Some(off) = c.checked_sub(self.head_index) {
                if let Some(e) = self.entries.get_mut(off as usize) {
                    next = e.next_waiter.take();
                    e.not_before = at;
                    self.deferred.push(Reverse((at, c)));
                }
            }
        }
    }

    /// The earliest pending completion cycle, if anything is executing —
    /// O(1), no entry scan. This is the value a full-ROB scan would
    /// compute; a debug assertion in [`Rob::complete_until`]
    /// cross-checks the two.
    pub fn earliest_completion(&self) -> Option<Cycle> {
        self.completions.peek().map(|&Reverse((c, _))| c)
    }

    /// Marks every entry whose completion cycle is `<= now` as `Done`
    /// (clearing its miss flag), appending the stream positions of the
    /// mispredicted ones to `resolved` in ascending (program) order —
    /// the order the old oldest-first writeback scan produced. Returns
    /// whether anything completed.
    pub fn complete_until(&mut self, now: Cycle, resolved: &mut Vec<InstrIndex>) -> bool {
        #[cfg(debug_assertions)]
        self.assert_tracker_matches_scan();
        let mut progress = false;
        while let Some(&Reverse((done, index))) = self.completions.peek() {
            if done > now {
                break;
            }
            self.completions.pop();
            // Heap entries are cleared on squash, so the entry is
            // always present; the guards keep this panic-free.
            let Some(off) = index.checked_sub(self.head_index) else {
                continue;
            };
            let Some(e) = self.entries.get_mut(off as usize) else {
                continue;
            };
            e.state = EntryState::Done;
            e.mem_pending = false;
            progress = true;
            if e.mispredicted {
                resolved.push(index);
            }
        }
        if resolved.len() > 1 {
            resolved.sort_unstable();
        }
        progress
    }

    /// Debug-build invariant: the incrementally maintained calendar and
    /// counters agree with a fresh scan of the entries (i.e. the old
    /// O(ROB) `next_event` and `occupancy` would return the same
    /// answers).
    #[cfg(debug_assertions)]
    fn assert_tracker_matches_scan(&self) {
        let scanned_earliest = self
            .entries
            .iter()
            .filter_map(|e| match e.state {
                EntryState::Executing(done) => Some(done),
                _ => None,
            })
            .min();
        debug_assert_eq!(
            self.earliest_completion(),
            scanned_earliest,
            "completion calendar drifted from entry states"
        );
        let waiting = self
            .entries
            .iter()
            .filter(|e| e.state == EntryState::Waiting)
            .count();
        let loads = self
            .entries
            .iter()
            .filter(|e| e.uop.kind == UopKind::Load)
            .count();
        let stores = self
            .entries
            .iter()
            .filter(|e| e.uop.kind == UopKind::Store)
            .count();
        debug_assert_eq!(
            (self.waiting, self.loads, self.stores),
            (waiting, loads, stores),
            "occupancy counters drifted from entry states"
        );
        // Every `Waiting` entry must be reachable by a future issue scan
        // — in the retry queue, parked in a retry-calendar bucket, or
        // parked on a producer's waiter list — and the store index must
        // match the in-flight stores exactly.
        let mut tracked: std::collections::BTreeSet<InstrIndex> = self
            .retry_q
            .iter()
            .copied()
            .chain(self.deferred.iter().map(|&Reverse((_, i))| i))
            .collect();
        for e in &self.entries {
            let mut w = e.waiters_head;
            while let Some(c) = w {
                tracked.insert(c);
                w = c
                    .checked_sub(self.head_index)
                    .and_then(|off| self.entries.get(off as usize))
                    .and_then(|e| e.next_waiter);
            }
        }
        for e in &self.entries {
            if e.state == EntryState::Waiting {
                debug_assert!(
                    tracked.contains(&e.index),
                    "waiting entry {} untracked by the issue scan",
                    e.index
                );
            }
        }
        let scanned_stores: Vec<InstrIndex> = self
            .entries
            .iter()
            .filter(|e| e.uop.kind == UopKind::Store)
            .map(|e| e.index)
            .collect();
        debug_assert_eq!(
            self.store_indices.iter().copied().collect::<Vec<_>>(),
            scanned_stores,
            "store index drifted from entry states"
        );
    }

    /// Whether the producer `dist` positions before `consumer` has its
    /// result available (`dist == 0` means no dependence; producers before
    /// the window have retired).
    pub fn producer_done(&self, consumer: InstrIndex, dist: u32) -> bool {
        if dist == 0 {
            return true;
        }
        let Some(p) = consumer.checked_sub(dist as u64) else {
            return true; // before the start of the program
        };
        if p < self.head_index {
            return true;
        }
        match self.get(p) {
            Some(e) => e.state == EntryState::Done,
            // Producer not yet renamed (can happen for fetch-buffer
            // consumers, not for allocated entries).
            None => false,
        }
    }

    /// Finds the youngest store older than `load_index` with the same data
    /// address, for store-to-load forwarding. Returns its state. Scans
    /// the in-flight stores only, not the whole window.
    pub fn older_store_to(&self, load_index: InstrIndex, addr: u64) -> Option<&RobEntry> {
        self.store_indices
            .iter()
            .rev()
            .copied()
            .skip_while(|&i| i >= load_index)
            .filter_map(|i| self.get(i))
            .find(|e| e.uop.mem_addr == Some(addr))
    }

    /// Hands the issue scan its candidates for cycle `now`: the retry
    /// queue (fresh dispatches and contention retries) merged with every
    /// retry-heap entry whose readiness bound has expired, pruned
    /// of entries that issued or retired, sorted oldest first — exactly
    /// the `Waiting` entries a full scan could possibly issue at `now`.
    /// The queue is drained; the caller returns unexamined or
    /// contention-blocked candidates via
    /// [`Rob::requeue_issue_candidate`] and blocked ones via
    /// [`Rob::defer_issue`]. Cost is O(candidates), not O(waiting).
    pub fn collect_issue_candidates(&mut self, now: Cycle, out: &mut Vec<InstrIndex>) {
        out.clear();
        while let Some(&Reverse((at, index))) = self.deferred.peek() {
            if at > now {
                break;
            }
            self.deferred.pop();
            self.retry_q.push(index);
        }
        let head = self.head_index;
        let entries = &self.entries;
        self.retry_q.retain(|&idx| {
            idx.checked_sub(head)
                .and_then(|off| entries.get(off as usize))
                .is_some_and(|e| e.state == EntryState::Waiting)
        });
        self.retry_q.sort_unstable();
        out.extend_from_slice(&self.retry_q);
        self.retry_q.clear();
    }

    /// Returns an unissued candidate from
    /// [`Rob::collect_issue_candidates`] to the next scan's examination
    /// set (functional-unit contention or issue-width exhaustion: ready
    /// state is unknown, retry next cycle).
    pub fn requeue_issue_candidate(&mut self, index: InstrIndex) {
        self.retry_q.push(index);
    }

    /// Debug-build invariant: every memo-deferred `Waiting` entry really
    /// is unable to pass the issue-readiness checks at `now` — i.e. the
    /// bounds recorded via [`Rob::defer_issue`] never hide an issuable
    /// entry from the scan.
    #[cfg(debug_assertions)]
    pub fn assert_deferrals_valid(&self, now: Cycle) {
        for e in self.entries.iter() {
            if e.state != EntryState::Waiting || e.not_before <= now {
                continue;
            }
            let ready = e
                .uop
                .src_dist
                .iter()
                .all(|d| self.producer_done(e.index, *d));
            let forward_blocked = ready
                && e.uop.kind == UopKind::Load
                && e.uop.mem_addr.is_some_and(|a| {
                    self.older_store_to(e.index, a)
                        .is_some_and(|st| st.state != EntryState::Done)
                });
            debug_assert!(
                !ready || forward_blocked,
                "issue memo hides a ready entry {}",
                e.index
            );
        }
    }

    /// Records that entry `index` cannot pass the issue-readiness checks
    /// before cycle `at` — an exact bound the issue stage derives from
    /// the states of the entry's blockers — and parks it in the retry
    /// heap until then, keeping it out of every scan in between.
    pub fn defer_issue(&mut self, index: InstrIndex, at: Cycle) {
        let Some(off) = index.checked_sub(self.head_index) else {
            return;
        };
        let Some(e) = self.entries.get_mut(off as usize) else {
            return;
        };
        e.not_before = at;
        self.deferred.push(Reverse((at, index)));
    }

    /// Like [`Rob::producer_done`] but, when the producer `dist`
    /// positions before `consumer` is not done, says what to wait for:
    ///
    /// * an `Executing` producer completes in the writeback of its
    ///   scheduled cycle, never earlier — [`Blocker::At`] that cycle;
    /// * a still-`Waiting` producer has no known completion cycle —
    ///   [`Blocker::On`] the producer, woken when it issues.
    ///
    /// `None` means the producer's result is available now.
    pub fn producer_blocker(&self, consumer: InstrIndex, dist: u32, now: Cycle) -> Option<Blocker> {
        if dist == 0 {
            return None;
        }
        let Some(p) = consumer.checked_sub(dist as u64) else {
            return None; // before the start of the program
        };
        if p < self.head_index {
            return None;
        }
        match self.get(p) {
            Some(e) => match e.state {
                EntryState::Done => None,
                EntryState::Executing(done) => Some(Blocker::At(done)),
                EntryState::Waiting => Some(Blocker::On(p)),
            },
            // Producer not yet renamed (unreachable for allocated
            // consumers): it cannot complete within the next cycle.
            None => Some(Blocker::At(now + 2)),
        }
    }

    /// Parks `consumer` on the intrusive waiter list of the
    /// still-`Waiting` entry `producer`: it leaves the issue scan until
    /// the producer issues, at which point it moves to the retry
    /// heap at the producer's completion cycle ­— the earliest its
    /// operand could possibly be available. Falls back to a plain
    /// next-scan requeue if the producer is not a live waiting entry.
    pub fn park_on_producer(&mut self, consumer: InstrIndex, producer: InstrIndex) {
        let prev = match producer
            .checked_sub(self.head_index)
            .and_then(|off| self.entries.get(off as usize))
        {
            Some(p) if p.state == EntryState::Waiting => p.waiters_head,
            _ => {
                self.retry_q.push(consumer);
                return;
            }
        };
        let Some(c) = consumer
            .checked_sub(self.head_index)
            .and_then(|off| self.entries.get_mut(off as usize))
        else {
            return;
        };
        c.next_waiter = prev;
        c.not_before = Cycle::MAX;
        // The producer was just read as live; the re-lookup keeps the
        // two mutable borrows disjoint.
        if let Some(p) = producer
            .checked_sub(self.head_index)
            .and_then(|off| self.entries.get_mut(off as usize))
        {
            p.waiters_head = Some(consumer);
        }
    }

    /// Iterates over in-flight entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Squashes every in-flight entry and repoints the window at
    /// `restart_index` (thread switch or full-pipeline flush).
    pub fn squash(&mut self, restart_index: InstrIndex) {
        self.entries.clear();
        self.head_index = restart_index;
        self.completions.clear();
        self.waiting = 0;
        self.loads = 0;
        self.stores = 0;
        self.retry_q.clear();
        self.deferred.clear();
        self.store_indices.clear();
    }

    /// Number of entries waiting in the reservation station — O(1).
    pub fn waiting_count(&self) -> usize {
        self.waiting
    }

    /// Occupancy counts: (waiting-in-RS, loads, stores) — O(1), kept
    /// incrementally at push/issue/retire/squash.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (self.waiting, self.loads, self.stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(pc: u64) -> Uop {
        Uop::new(UopKind::Alu, pc)
    }

    /// Issue + complete in one step, for tests that only care about the
    /// end state.
    fn force_done(rob: &mut Rob, index: InstrIndex) {
        assert!(rob.set_executing(index, 0, false));
        let mut resolved = Vec::new();
        rob.complete_until(Cycle::MAX, &mut resolved);
    }

    #[test]
    fn sequential_allocation_and_retirement() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        force_done(&mut rob, 0);
        let e = rob.pop_head().expect("head exists");
        assert_eq!(e.index, 0);
        assert_eq!(rob.head_index(), 1);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn non_sequential_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(5, alu(0), false);
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn retiring_waiting_entry_panics() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        let _ = rob.pop_head();
    }

    #[test]
    fn producer_tracking() {
        let mut rob = Rob::new(8);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        assert!(!rob.producer_done(1, 1));
        force_done(&mut rob, 0);
        assert!(rob.producer_done(1, 1));
        assert!(rob.producer_done(1, 5), "pre-program producers are done");
        assert!(rob.producer_done(1, 0), "no dependence");
    }

    #[test]
    fn retired_producers_count_as_done() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        force_done(&mut rob, 0);
        let _ = rob.pop_head();
        rob.push(1, alu(4), false);
        assert!(rob.producer_done(1, 1));
    }

    #[test]
    fn store_forwarding_finds_youngest_older_store() {
        let mut rob = Rob::new(8);
        rob.push(0, Uop::new(UopKind::Store, 0).with_mem(0x100), false);
        rob.push(1, Uop::new(UopKind::Store, 4).with_mem(0x100), false);
        rob.push(2, Uop::new(UopKind::Load, 8).with_mem(0x100), false);
        let s = rob.older_store_to(2, 0x100).expect("store found");
        assert_eq!(s.index, 1, "youngest older store wins");
        assert!(rob.older_store_to(2, 0x200).is_none());
        assert!(rob.older_store_to(0, 0x100).is_none(), "no younger stores");
    }

    #[test]
    fn squash_empties_and_repoints() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.set_executing(0, 7, true);
        rob.squash(42);
        assert!(rob.is_empty());
        assert_eq!(rob.head_index(), 42);
        assert_eq!(rob.earliest_completion(), None, "calendar cleared");
        assert_eq!(rob.occupancy(), (0, 0, 0), "counters cleared");
        rob.push(42, alu(0), false);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn occupancy_counts_kinds() {
        let mut rob = Rob::new(8);
        rob.push(0, Uop::new(UopKind::Load, 0).with_mem(0x1), false);
        rob.push(1, Uop::new(UopKind::Store, 4).with_mem(0x2), false);
        rob.push(2, alu(8), false);
        force_done(&mut rob, 2);
        let (waiting, loads, stores) = rob.occupancy();
        assert_eq!((waiting, loads, stores), (2, 1, 1));
    }

    #[test]
    fn earliest_completion_tracks_calendar() {
        let mut rob = Rob::new(8);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        rob.push(2, alu(8), false);
        assert_eq!(rob.earliest_completion(), None);
        rob.set_executing(0, 30, false);
        rob.set_executing(1, 10, false);
        assert_eq!(rob.earliest_completion(), Some(10));
        let mut resolved = Vec::new();
        assert!(rob.complete_until(10, &mut resolved));
        assert_eq!(rob.earliest_completion(), Some(30), "10-bucket drained");
        assert!(!rob.complete_until(29, &mut resolved), "nothing due yet");
        assert!(rob.complete_until(30, &mut resolved));
        assert_eq!(rob.earliest_completion(), None);
        assert_eq!(rob.waiting_count(), 1, "entry 2 never issued");
    }

    #[test]
    fn complete_until_reports_mispredicts_in_program_order() {
        let mut rob = Rob::new(8);
        for i in 0..4 {
            rob.push(i, alu(i * 4), true);
        }
        // Issue out of order into the same completion cycle.
        rob.set_executing(3, 5, false);
        rob.set_executing(1, 5, false);
        rob.set_executing(2, 4, false);
        let mut resolved = Vec::new();
        assert!(rob.complete_until(5, &mut resolved));
        assert_eq!(resolved, vec![1, 2, 3], "ascending stream positions");
    }

    #[test]
    fn complete_until_clears_miss_flag() {
        let mut rob = Rob::new(4);
        rob.push(0, Uop::new(UopKind::Load, 0).with_mem(0x40), false);
        rob.set_executing(0, 9, true);
        assert!(rob.head().is_some_and(|e| e.mem_pending));
        let mut resolved = Vec::new();
        rob.complete_until(9, &mut resolved);
        let head = rob.head().expect("entry still allocated");
        assert_eq!(head.state, EntryState::Done);
        assert!(!head.mem_pending);
        assert!(resolved.is_empty(), "not mispredicted");
    }

    #[test]
    fn candidates_reappear_until_issued_or_bounded() {
        let mut rob = Rob::new(4);
        rob.push(0, alu(0), false);
        rob.push(1, alu(4), false);
        let mut out = Vec::new();
        rob.collect_issue_candidates(0, &mut out);
        assert_eq!(out, vec![0, 1]);
        // Unissued candidates are handed back by the issue stage.
        rob.requeue_issue_candidate(0);
        rob.requeue_issue_candidate(1);
        rob.collect_issue_candidates(1, &mut out);
        assert_eq!(out, vec![0, 1]);
        rob.defer_issue(1, 10);
        rob.requeue_issue_candidate(0);
        rob.collect_issue_candidates(5, &mut out);
        assert_eq!(out, vec![0], "bounded entry hidden until its cycle");
        rob.requeue_issue_candidate(0);
        rob.collect_issue_candidates(10, &mut out);
        assert_eq!(out, vec![0, 1], "bound expired");
        assert!(rob.set_executing(0, 3, false));
        rob.collect_issue_candidates(10, &mut out);
        assert_eq!(out, vec![1], "issued entry left the scan");
    }
}
