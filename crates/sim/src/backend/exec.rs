//! Functional-unit pool: per-cycle issue-port and unit accounting.

use crate::config::PipelineConfig;
use crate::types::Cycle;
use crate::uop::UopKind;

/// Tracks functional-unit availability within one cycle and across the
/// unpipelined divider's occupancy.
///
/// Call [`FuPool::begin_cycle`] once per cycle, then [`FuPool::try_issue`]
/// for each candidate micro-op; a successful issue returns the completion
/// cycle.
///
/// # Examples
///
/// ```
/// use soe_sim::backend::FuPool;
/// use soe_sim::{MachineConfig, UopKind};
///
/// let mut fu = FuPool::new(&MachineConfig::default().pipeline);
/// fu.begin_cycle(0);
/// assert_eq!(fu.try_issue(UopKind::Alu, 0), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: PipelineConfig,
    alu_used: usize,
    mul_used: usize,
    load_used: usize,
    store_used: usize,
    div_busy_until: Cycle,
}

impl FuPool {
    /// Creates the pool.
    pub fn new(cfg: &PipelineConfig) -> Self {
        Self {
            cfg: *cfg,
            alu_used: 0,
            mul_used: 0,
            load_used: 0,
            store_used: 0,
            div_busy_until: 0,
        }
    }

    /// Resets the per-cycle port counters.
    pub fn begin_cycle(&mut self, _now: Cycle) {
        self.alu_used = 0;
        self.mul_used = 0;
        self.load_used = 0;
        self.store_used = 0;
    }

    /// Attempts to claim a unit for `kind` at `now`. On success returns
    /// the cycle the computation part finishes (memory time is added by
    /// the caller for loads).
    pub fn try_issue(&mut self, kind: UopKind, now: Cycle) -> Option<Cycle> {
        match kind {
            UopKind::Alu
            | UopKind::Nop
            | UopKind::Pause
            | UopKind::Branch { .. }
            | UopKind::Call { .. }
            | UopKind::Return { .. } => {
                if self.alu_used < self.cfg.alu_units {
                    self.alu_used += 1;
                    Some(now + 1)
                } else {
                    None
                }
            }
            UopKind::Mul => {
                if self.mul_used < self.cfg.mul_units {
                    self.mul_used += 1;
                    Some(now + self.cfg.mul_latency)
                } else {
                    None
                }
            }
            UopKind::Div => {
                if self.cfg.div_units > 0 && self.div_busy_until <= now {
                    self.div_busy_until = now + self.cfg.div_latency;
                    Some(now + self.cfg.div_latency)
                } else {
                    None
                }
            }
            UopKind::Load => {
                if self.load_used < self.cfg.load_ports {
                    self.load_used += 1;
                    Some(now + 1) // AGU; cache time added by caller
                } else {
                    None
                }
            }
            UopKind::Store => {
                if self.store_used < self.cfg.store_ports {
                    self.store_used += 1;
                    Some(now + 1)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn pool() -> FuPool {
        FuPool::new(&MachineConfig::default().pipeline)
    }

    #[test]
    fn alu_ports_limit_per_cycle() {
        let mut fu = pool();
        fu.begin_cycle(0);
        let alus = MachineConfig::default().pipeline.alu_units;
        for _ in 0..alus {
            assert!(fu.try_issue(UopKind::Alu, 0).is_some());
        }
        assert_eq!(fu.try_issue(UopKind::Alu, 0), None);
        fu.begin_cycle(1);
        assert!(fu.try_issue(UopKind::Alu, 1).is_some(), "ports reset");
    }

    #[test]
    fn divider_is_unpipelined() {
        let mut fu = pool();
        fu.begin_cycle(0);
        let done = fu.try_issue(UopKind::Div, 0).unwrap();
        fu.begin_cycle(1);
        assert_eq!(fu.try_issue(UopKind::Div, 1), None, "divider busy");
        fu.begin_cycle(done);
        assert!(fu.try_issue(UopKind::Div, done).is_some());
    }

    #[test]
    fn multiplier_is_pipelined() {
        let mut fu = pool();
        fu.begin_cycle(0);
        assert!(fu.try_issue(UopKind::Mul, 0).is_some());
        fu.begin_cycle(1);
        assert!(
            fu.try_issue(UopKind::Mul, 1).is_some(),
            "new mul each cycle"
        );
    }

    #[test]
    fn latencies_match_config() {
        let cfg = MachineConfig::default().pipeline;
        let mut fu = pool();
        fu.begin_cycle(10);
        assert_eq!(fu.try_issue(UopKind::Mul, 10), Some(10 + cfg.mul_latency));
        assert_eq!(fu.try_issue(UopKind::Div, 10), Some(10 + cfg.div_latency));
        assert_eq!(
            fu.try_issue(
                UopKind::Branch {
                    taken: false,
                    target: 0
                },
                10
            ),
            Some(11)
        );
    }

    #[test]
    fn load_and_store_ports_are_separate() {
        let cfg = MachineConfig::default().pipeline;
        let mut fu = pool();
        fu.begin_cycle(0);
        for _ in 0..cfg.load_ports {
            assert!(fu.try_issue(UopKind::Load, 0).is_some());
        }
        assert_eq!(fu.try_issue(UopKind::Load, 0), None);
        assert!(fu.try_issue(UopKind::Store, 0).is_some(), "store port free");
    }
}
