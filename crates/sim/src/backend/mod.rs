//! The out-of-order back end: ROB, functional units.

mod exec;
mod rob;

pub use exec::FuPool;
pub use rob::{Blocker, EntryState, Rob, RobEntry};
