//! Machine-level statistics: the hardware counters of the simulated
//! processor.

use serde::{Deserialize, Serialize};

use crate::types::Cycle;

/// Per-thread retirement-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Instructions retired (the paper's `Instrs_j`; doubles as the
    /// thread's architectural position for trace replay).
    pub retired: u64,
    /// Cycles from the retirement of the first instruction after
    /// switch-in until switch-out (the paper's `Cycles_j`; excludes switch
    /// overhead).
    pub running_cycles: u64,
    /// L2-miss stalls that caused a thread switch (the paper's
    /// `Misses_j`).
    pub switch_misses: u64,
    /// Switches out of this thread caused by miss events.
    pub event_switches: u64,
    /// Switches out of this thread forced by the policy (these hide no
    /// memory access).
    pub forced_switches: u64,
    /// Switches requested by software hint instructions (`pause`).
    pub hint_switches: u64,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted retired branches.
    pub mispredicts: u64,
    /// Retired calls.
    pub calls: u64,
    /// Retired returns.
    pub returns: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
}

impl ThreadStats {
    /// All switches out of this thread.
    pub fn switches(&self) -> u64 {
        self.event_switches + self.forced_switches + self.hint_switches
    }
}

/// Whole-machine statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Per-thread counters.
    pub threads: Vec<ThreadStats>,
    /// Total thread switches.
    pub total_switches: u64,
    /// Accumulated switch latency: from switch start until the first
    /// retirement of the incoming thread.
    pub switch_overhead_cycles: u64,
    /// Number of switches whose latency has been fully measured (the
    /// incoming thread retired at least one instruction).
    pub measured_switches: u64,
}

impl MachineStats {
    /// Creates zeroed statistics for `threads` hardware contexts.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: vec![ThreadStats::default(); threads],
            ..Self::default()
        }
    }

    /// Total retired instructions across threads.
    pub fn total_retired(&self) -> u64 {
        self.threads.iter().map(|t| t.retired).sum()
    }

    /// Whole-machine IPC: total retired over total cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_retired() as f64 / self.cycles as f64
        }
    }

    /// Per-thread IPC over *total* cycles — the paper's `IPC_SOE_j`.
    pub fn thread_ipc(&self, thread: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.threads
                .get(thread)
                .map_or(0.0, |t| t.retired as f64 / self.cycles as f64)
        }
    }

    /// Average measured thread-switch latency in cycles (the paper
    /// reports this accumulating to around 25).
    pub fn avg_switch_latency(&self) -> f64 {
        if self.measured_switches == 0 {
            0.0
        } else {
            self.switch_overhead_cycles as f64 / self.measured_switches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = MachineStats::new(2);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.thread_ipc(0), 0.0);
    }

    #[test]
    fn aggregates_sum_threads() {
        let mut s = MachineStats::new(2);
        s.cycles = 100;
        s.threads[0].retired = 120;
        s.threads[1].retired = 80;
        assert_eq!(s.total_retired(), 200);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.thread_ipc(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn switch_latency_average() {
        let mut s = MachineStats::new(1);
        s.switch_overhead_cycles = 50;
        s.measured_switches = 2;
        assert_eq!(s.avg_switch_latency(), 25.0);
    }

    #[test]
    fn switches_sum_reasons() {
        let t = ThreadStats {
            event_switches: 3,
            forced_switches: 4,
            ..Default::default()
        };
        assert_eq!(t.switches(), 7);
    }
}
