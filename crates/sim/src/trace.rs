//! Replayable micro-op streams feeding the pipeline.

use crate::types::InstrIndex;
use crate::uop::{Uop, UopKind};

/// A replayable per-thread micro-op stream.
///
/// `uop_at` must be a **pure function** of the index: the pipeline re-reads
/// arbitrary positions after thread-switch squashes and branch redirects.
/// This mirrors what the paper's LIT checkpoints provide — the ability to
/// resume execution from any architectural point.
pub trait TraceSource {
    /// The micro-op at dynamic position `index` of this thread's committed
    /// path.
    fn uop_at(&self, index: InstrIndex) -> Uop;

    /// Human-readable workload name (used in reports).
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        (**self).uop_at(index)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        (**self).uop_at(index)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A trivial trace of independent single-cycle ALU ops — useful for tests
/// and pipeline-width microbenchmarks.
///
/// # Examples
///
/// ```
/// use soe_sim::{AluTrace, TraceSource, UopKind};
///
/// let t = AluTrace::new();
/// assert_eq!(t.uop_at(7).kind, UopKind::Alu);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AluTrace;

impl AluTrace {
    /// Creates the trace.
    pub fn new() -> Self {
        Self
    }
}

impl TraceSource for AluTrace {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        Uop::new(UopKind::Alu, 0x1000 + (index % 1024) * 4)
    }
    fn name(&self) -> &str {
        "alu"
    }
}

/// A trace built from a repeating explicit pattern of micro-ops — the
/// workhorse of the simulator's unit tests.
///
/// Position `i` yields `pattern[i % pattern.len()]` with the `pc` offset
/// advanced so that instruction addresses stay distinct across iterations
/// of the pattern within a configurable code footprint.
#[derive(Debug, Clone)]
pub struct PatternTrace {
    pattern: Vec<Uop>,
    name: String,
}

impl PatternTrace {
    /// Creates a trace repeating `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn new(name: impl Into<String>, pattern: Vec<Uop>) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        Self {
            pattern,
            name: name.into(),
        }
    }

    /// Length of the repeating pattern.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }
}

impl TraceSource for PatternTrace {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        // soe-lint: allow(slice-index): new() rejects empty patterns and the index is reduced modulo len
        self.pattern[(index % self.pattern.len() as u64) as usize]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_trace_repeats() {
        let t = PatternTrace::new(
            "p",
            vec![Uop::new(UopKind::Alu, 0), Uop::new(UopKind::Nop, 4)],
        );
        assert_eq!(t.uop_at(0).kind, UopKind::Alu);
        assert_eq!(t.uop_at(1).kind, UopKind::Nop);
        assert_eq!(t.uop_at(2).kind, UopKind::Alu);
        assert_eq!(t.name(), "p");
    }

    #[test]
    fn boxed_trace_delegates() {
        let t: Box<dyn TraceSource> = Box::new(AluTrace::new());
        assert_eq!(t.uop_at(5).kind, UopKind::Alu);
        assert_eq!(t.name(), "alu");
    }

    #[test]
    fn trace_is_pure_in_index() {
        let t = AluTrace::new();
        assert_eq!(t.uop_at(42), t.uop_at(42));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        PatternTrace::new("e", vec![]);
    }
}
