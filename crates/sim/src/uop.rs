//! The micro-operation model consumed by the pipeline.

use serde::{Deserialize, Serialize};

use crate::types::Addr;

/// The operation class of a micro-op, determining which functional unit
/// executes it and with what latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopKind {
    /// Single-cycle integer/logic operation.
    Alu,
    /// Pipelined multiply (or medium-latency FP op).
    Mul,
    /// Unpipelined divide (or long-latency FP op).
    Div,
    /// Memory load; `mem_addr` must be set.
    Load,
    /// Memory store; `mem_addr` must be set. Data is written at retirement
    /// (through the store buffer).
    Store,
    /// Conditional or unconditional branch. `taken` is the architectural
    /// outcome; `target` the architectural target when taken.
    Branch {
        /// Architectural outcome.
        taken: bool,
        /// Branch target when taken.
        target: Addr,
    },
    /// Direct function call: always taken to `target`; pushes the
    /// fall-through address onto the return address stack.
    Call {
        /// Callee entry address.
        target: Addr,
    },
    /// Function return: always taken to `target` (the caller's
    /// fall-through); predicted by the return address stack.
    Return {
        /// Architectural return target.
        target: Addr,
    },
    /// No-operation (consumes front-end slots only).
    Nop,
    /// Explicit switch hint (the x86 `pause` of the paper's Section 6):
    /// retires like a single-cycle op and offers the policy a voluntary
    /// switch point — typically emitted in busy-wait loops.
    Pause,
}

impl UopKind {
    /// Whether this kind accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, UopKind::Load | UopKind::Store)
    }

    /// Whether this kind is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, UopKind::Branch { .. })
    }

    /// Whether this kind redirects control flow (branch, call or return).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            UopKind::Branch { .. } | UopKind::Call { .. } | UopKind::Return { .. }
        )
    }
}

/// One micro-op of a thread's dynamic instruction stream.
///
/// Register dependences are encoded positionally: `src_dist[i] = d > 0`
/// means source operand `i` is produced by the micro-op `d` positions
/// earlier in the same thread's stream (`0` means no dependence). This
/// producer-distance encoding is what synthetic traces and real traces
/// alike reduce to for timing simulation, and it makes the stream
/// position-replayable.
///
/// # Examples
///
/// ```
/// use soe_sim::{Uop, UopKind};
///
/// let u = Uop::new(UopKind::Alu, 0x1000).with_deps(1, 2);
/// assert_eq!(u.src_dist, [1, 2]);
/// assert!(!u.kind.is_mem());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uop {
    /// Operation class.
    pub kind: UopKind,
    /// Instruction address (used by the I-cache, iTLB, predictor and BTB).
    pub pc: Addr,
    /// Data address for loads and stores.
    pub mem_addr: Option<Addr>,
    /// Producer distances of up to two source operands; `0` = none.
    pub src_dist: [u32; 2],
}

impl Uop {
    /// Creates a micro-op with no dependences and no memory address.
    pub fn new(kind: UopKind, pc: Addr) -> Self {
        Self {
            kind,
            pc,
            mem_addr: None,
            src_dist: [0, 0],
        }
    }

    /// Sets the two producer distances (builder style).
    pub fn with_deps(mut self, a: u32, b: u32) -> Self {
        self.src_dist = [a, b];
        self
    }

    /// Sets the data address (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the kind is not a load or store.
    pub fn with_mem(mut self, addr: Addr) -> Self {
        assert!(self.kind.is_mem(), "only loads/stores carry a data address");
        self.mem_addr = Some(addr);
        self
    }

    /// The data address.
    ///
    /// # Panics
    ///
    /// Panics if this is a memory op without an address (trace bug).
    pub fn mem_addr(&self) -> Addr {
        self.mem_addr
            // soe-lint: allow(panic-unwrap): documented panicking accessor; a missing address is a trace-generation bug
            .expect("memory micro-op must carry an address")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::Alu.is_mem());
        assert!(UopKind::Branch {
            taken: true,
            target: 0
        }
        .is_branch());
        assert!(!UopKind::Nop.is_branch());
    }

    #[test]
    fn builder_sets_fields() {
        let u = Uop::new(UopKind::Load, 0x40)
            .with_mem(0x1234)
            .with_deps(3, 0);
        assert_eq!(u.mem_addr(), 0x1234);
        assert_eq!(u.src_dist, [3, 0]);
        assert_eq!(u.pc, 0x40);
    }

    #[test]
    #[should_panic(expected = "only loads/stores")]
    fn with_mem_on_alu_panics() {
        let _ = Uop::new(UopKind::Alu, 0).with_mem(0x10);
    }
}
