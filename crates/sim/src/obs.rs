//! Cycle-level observability: a deterministic, bounded event stream.
//!
//! The paper's mechanism lives entirely in time-domain behaviour — runs
//! delimited by L2 misses, Δ-window re-estimation, deficit-driven switch
//! decisions — which end-of-run aggregates cannot show. This module
//! defines the event vocabulary ([`EventKind`]) and a bounded recorder
//! ([`Tracer`]) that the machine, the memory hierarchy and the fairness
//! policy feed when (and only when) a tracer is attached.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Nothing here is consulted unless a tracer
//!    is attached; tracing never influences simulation state, so traced
//!    and untraced runs produce byte-identical results.
//! 2. **Deterministic.** Events are ordered by `(cycle, emission
//!    sequence)` in a `BTreeMap`, so two identical runs — at any worker
//!    count — produce byte-identical traces.
//! 3. **Bounded.** The ring keeps at most [`TraceConfig::capacity`]
//!    events, dropping the *oldest* first and counting the drops, so a
//!    long run cannot exhaust memory.
//!
//! Events may be emitted out of order in real time (an L2 fill is known
//! at miss time but completes hundreds of cycles later); the tracer
//! holds them in a pending set and releases them to the ring only once
//! the watermark passes, which restores global cycle order.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::config::ConfigError;
use crate::switch::SwitchReason;
use crate::types::{Addr, Cycle, ThreadId};

/// A tracer shared between the machine, the memory hierarchy and the
/// switch policy. Simulation is single-threaded per machine, so an
/// `Rc<RefCell<…>>` suffices; machines built inside worker closures each
/// own an independent buffer.
pub type SharedTracer = Rc<RefCell<Tracer>>;

/// Tracing knobs, carried by `RunConfig` (`None` disables tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained; beyond it the oldest are dropped (and
    /// counted in [`Trace::dropped`]).
    pub capacity: usize,
    /// Period of the machine-wide retire-rate samples, in cycles.
    /// Samples are stamped on the period grid, so fast-forwarding over
    /// quiescent stalls cannot move them.
    pub retire_sample_period: Cycle,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 20,
            retire_sample_period: 10_000,
        }
    }
}

impl TraceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Fails if the capacity or sample period is zero.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.capacity == 0 {
            return Err(ConfigError("trace capacity must be positive".into()));
        }
        if self.retire_sample_period == 0 {
            return Err(ConfigError("retire sample period must be positive".into()));
        }
        Ok(())
    }
}

/// What happened (the timestamp lives in [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The running thread was switched out, with the cause.
    SwitchOut {
        /// The outgoing thread.
        tid: ThreadId,
        /// Why it was switched out.
        reason: SwitchReason,
    },
    /// A thread completed its switch-in and occupies the core.
    SwitchIn {
        /// The incoming thread.
        tid: ThreadId,
    },
    /// A demand L2 miss was initiated for `line`.
    L2Miss {
        /// The missing cache line address.
        line: Addr,
    },
    /// The fill for an earlier demand L2 miss completed.
    L2Fill {
        /// The filled cache line address.
        line: Addr,
    },
    /// Machine-wide cumulative retired-instruction sample, stamped on
    /// the [`TraceConfig::retire_sample_period`] grid.
    RetireSample {
        /// Instructions retired (all threads) since machine construction.
        retired: u64,
    },
    /// The Δ-window estimator recomputed a thread's stand-alone IPC
    /// estimate and quota (Eq 11–13 / Eq 9).
    EstimatorUpdate {
        /// The thread the estimate is for.
        tid: ThreadId,
        /// Estimated stand-alone IPC (`IPC_ST_j`); 0 until the thread
        /// has been sampled at least once.
        ipc_st: f64,
        /// Forced-switch instruction quota (`IPSw_j`); `None` means no
        /// forced switching for this thread this window.
        quota: Option<f64>,
    },
    /// A switched-in thread was credited its deficit quota.
    DeficitGrant {
        /// The credited thread.
        tid: ThreadId,
        /// Credit applied (post-cap balance minus prior balance).
        credited: f64,
        /// Balance after the grant.
        balance: f64,
        /// The quota in force at grant time.
        quota: f64,
    },
    /// A thread exhausted its deficit and was forced out (DRR-style
    /// enforcement).
    DeficitForce {
        /// The exhausted thread.
        tid: ThreadId,
    },
    /// A thread exceeded the maximum-cycles quota and was forced out.
    CycleQuotaExpiry {
        /// The over-quota thread.
        tid: ThreadId,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated cycle the event is attributed to.
    pub at: Cycle,
    /// What happened.
    pub kind: EventKind,
}

/// A finished recording: events in non-decreasing cycle order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring was full (oldest-first drops).
    pub dropped: u64,
}

/// The bounded, order-restoring event recorder.
///
/// # Examples
///
/// ```
/// use soe_sim::obs::{EventKind, TraceConfig, Tracer};
///
/// let mut t = Tracer::new(TraceConfig::default());
/// t.emit(40, EventKind::L2Miss { line: 0x80 });
/// t.emit(340, EventKind::L2Fill { line: 0x80 }); // known at miss time
/// t.emit(60, EventKind::RetireSample { retired: 7 });
/// let trace = t.take();
/// let cycles: Vec<u64> = trace.events.iter().map(|e| e.at).collect();
/// assert_eq!(cycles, vec![40, 60, 340]); // cycle order restored
/// ```
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    /// Events not yet released to the ring, ordered by
    /// `(cycle, emission sequence)` — the deterministic total order.
    pending: BTreeMap<(Cycle, u64), EventKind>,
    seq: u64,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    /// Cycle up to which (exclusive) pending events have been released.
    watermark: Cycle,
    /// Next retire-sample boundary.
    next_sample: Cycle,
}

impl Tracer {
    /// Creates an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (zero capacity or sample period).
    pub fn new(cfg: TraceConfig) -> Self {
        if let Err(e) = cfg.check() {
            // soe-lint: allow(panic-macro): config is validated before any run; mirrors the other config validate() wrappers
            panic!("{e}");
        }
        Self {
            cfg,
            pending: BTreeMap::new(),
            seq: 0,
            ring: VecDeque::new(),
            dropped: 0,
            watermark: 0,
            next_sample: cfg.retire_sample_period,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Records `kind` at cycle `at`. `at` may lie in the future (e.g. a
    /// scheduled fill completion); it is clamped to the watermark so a
    /// late emission can never break the released order.
    pub fn emit(&mut self, at: Cycle, kind: EventKind) {
        let at = at.max(self.watermark);
        self.pending.insert((at, self.seq), kind);
        self.seq += 1;
    }

    /// Advances the watermark to `now`, stamping any crossed retire-rate
    /// sample boundaries with the *current* cumulative `retired` count
    /// (nothing retires during a quiescent fast-forward jump, so the
    /// count at each crossed boundary equals the count at `now`) and
    /// releasing pending events strictly below `now` to the ring.
    pub fn advance(&mut self, now: Cycle, retired: u64) {
        while self.next_sample <= now {
            let at = self.next_sample;
            self.emit(at, EventKind::RetireSample { retired });
            self.next_sample += self.cfg.retire_sample_period;
        }
        self.watermark = self.watermark.max(now);
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 >= now {
                break;
            }
            let ((at, _), kind) = entry.remove_entry();
            self.push(TraceEvent { at, kind });
        }
    }

    /// Discards everything recorded so far and restarts the recording at
    /// `now` (used to drop warm-up): the ring, the pending set and the
    /// drop count are cleared, and the next retire sample lands on the
    /// first period boundary strictly after `now`.
    pub fn restart(&mut self, now: Cycle) {
        self.pending.clear();
        self.ring.clear();
        self.dropped = 0;
        self.watermark = now;
        self.next_sample =
            (now / self.cfg.retire_sample_period + 1) * self.cfg.retire_sample_period;
    }

    /// Finishes the recording: releases every pending event (scheduled
    /// fills may extend past the last simulated cycle) and returns the
    /// trace, leaving the recorder empty.
    pub fn take(&mut self) -> Trace {
        while let Some(entry) = self.pending.first_entry() {
            let ((at, _), kind) = entry.remove_entry();
            self.push(TraceEvent { at, kind });
        }
        Trace {
            events: self.ring.drain(..).collect(),
            dropped: self.dropped,
        }
    }

    /// Events currently retained (released + pending).
    pub fn len(&self) -> usize {
        self.ring.len() + self.pending.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped so far to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, event: TraceEvent) {
        if self.ring.len() >= self.cfg.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, period: Cycle) -> TraceConfig {
        TraceConfig {
            capacity,
            retire_sample_period: period,
        }
    }

    #[test]
    fn events_come_out_in_cycle_order() {
        let mut t = Tracer::new(cfg(64, 1_000_000));
        t.emit(10, EventKind::L2Miss { line: 1 });
        t.emit(310, EventKind::L2Fill { line: 1 });
        t.emit(20, EventKind::L2Miss { line: 2 });
        t.emit(320, EventKind::L2Fill { line: 2 });
        t.advance(300, 0);
        t.emit(
            300,
            EventKind::SwitchIn {
                tid: ThreadId::new(0),
            },
        );
        let trace = t.take();
        let at: Vec<Cycle> = trace.events.iter().map(|e| e.at).collect();
        assert_eq!(at, vec![10, 20, 300, 310, 320]);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn same_cycle_events_keep_emission_order() {
        let mut t = Tracer::new(cfg(64, 1_000_000));
        t.emit(
            5,
            EventKind::DeficitForce {
                tid: ThreadId::new(1),
            },
        );
        t.emit(
            5,
            EventKind::SwitchOut {
                tid: ThreadId::new(1),
                reason: SwitchReason::Forced,
            },
        );
        let trace = t.take();
        assert!(matches!(
            trace.events[0].kind,
            EventKind::DeficitForce { .. }
        ));
        assert!(matches!(trace.events[1].kind, EventKind::SwitchOut { .. }));
    }

    #[test]
    fn capacity_drops_oldest_and_counts() {
        let mut t = Tracer::new(cfg(2, 1_000_000));
        for i in 0..5u64 {
            t.emit(i, EventKind::L2Miss { line: i });
        }
        let trace = t.take();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
        assert_eq!(trace.events[0].at, 3);
        assert_eq!(trace.events[1].at, 4);
    }

    #[test]
    fn retire_samples_land_on_the_period_grid() {
        let mut t = Tracer::new(cfg(64, 100));
        t.advance(50, 1);
        t.advance(350, 7); // jumps over 100, 200, 300
        let trace = t.take();
        let samples: Vec<(Cycle, u64)> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::RetireSample { retired } => Some((e.at, retired)),
                _ => None,
            })
            .collect();
        assert_eq!(samples, vec![(100, 7), (200, 7), (300, 7)]);
    }

    #[test]
    fn restart_discards_history_and_realigns_samples() {
        let mut t = Tracer::new(cfg(2, 100));
        for i in 0..5u64 {
            t.emit(i, EventKind::L2Miss { line: i });
        }
        t.restart(150);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        t.advance(260, 9);
        let trace = t.take();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].at, 200, "first boundary strictly after 150");
    }

    #[test]
    fn late_emission_is_clamped_to_the_watermark() {
        let mut t = Tracer::new(cfg(64, 1_000_000));
        t.advance(100, 0);
        t.emit(40, EventKind::L2Fill { line: 9 }); // late: clamped to 100
        t.emit(
            100,
            EventKind::SwitchIn {
                tid: ThreadId::new(0),
            },
        );
        let trace = t.take();
        assert_eq!(trace.events[0].at, 100);
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(cfg(0, 10).check().is_err());
        assert!(cfg(10, 0).check().is_err());
        assert!(TraceConfig::default().check().is_ok());
    }
}
