//! The machine: an out-of-order core with Switch-on-Event multithreading.
//!
//! One [`Machine`] owns the shared front end (fetch, gshare, BTB), the
//! shared memory hierarchy, the out-of-order back end (ROB, functional
//! units) and N thread contexts, exactly one of which occupies the
//! pipeline at any time. A pluggable [`SwitchPolicy`] decides when the
//! running thread is switched out; switching squashes the pipeline (the
//! paper's 6-cycle drain), repoints the front end at the incoming
//! thread's architectural position and refills — caches, TLBs and
//! predictor state are shared and survive switches.

use crate::backend::{Blocker, EntryState, FuPool, Rob};
use crate::calendar::{Calendar, CalendarEvent, CalendarStats};
use crate::config::MachineConfig;
use crate::config::PredictorKind;
use crate::error::SimError;
use crate::frontend::{Bimodal, Btb, DirectionPredictor, FetchUnit, Gshare, Tournament};
use crate::mem::Hierarchy;
use crate::obs::{EventKind, SharedTracer};
use crate::stats::MachineStats;
use crate::switch::{SwitchDecision, SwitchPolicy, SwitchReason};
use crate::trace::TraceSource;
use crate::types::{Cycle, InstrIndex, ThreadId};
use crate::uop::UopKind;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    Draining { until: Cycle, next: ThreadId },
}

/// The simulated SOE machine.
///
/// # Examples
///
/// ```
/// use soe_sim::{AluTrace, Machine, MachineConfig, NeverSwitch};
///
/// let mut m = Machine::new(
///     MachineConfig::test_config(),
///     vec![Box::new(AluTrace::new())],
///     Box::new(NeverSwitch::new()),
/// );
/// m.run_cycles(10_000);
/// assert!(m.stats().total_retired() > 0);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    traces: Vec<Box<dyn TraceSource>>,
    policy: Box<dyn SwitchPolicy>,
    hier: Hierarchy,
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    fetch: FetchUnit,
    rob: Rob,
    fu: FuPool,
    now: Cycle,
    current: ThreadId,
    state: CoreState,
    stats: MachineStats,
    /// Architectural position (instructions committed) per thread; unlike
    /// the resettable statistics this survives `reset_stats`.
    positions: Vec<InstrIndex>,
    /// Start cycle of an in-flight switch whose latency is still being
    /// measured (cleared at the incoming thread's first retirement).
    switch_started: Option<Cycle>,
    /// Cycle of the first retirement since the last switch-in (start of
    /// the paper's `Cycles_j` accounting interval).
    run_started: Option<Cycle>,
    /// Stream position of the miss-stall episode already reported to the
    /// policy, so each stall triggers exactly one decision.
    stall_reported: Option<InstrIndex>,
    /// Retired stores awaiting commit (used only when
    /// `store_drain_interval > 0`).
    store_queue: std::collections::VecDeque<crate::types::Addr>,
    /// Next cycle the store buffer may commit an entry.
    store_drain_at: Cycle,
    /// Optional cycle-level event recorder (see [`crate::obs`]). `None`
    /// — the default — costs one branch per tick and nothing else;
    /// tracing never influences simulation state.
    tracer: Option<SharedTracer>,
    /// Instructions retired across all threads — always equal to the sum
    /// of `positions`, maintained at retirement so the tracer watermark
    /// and the stall watchdog never re-sum per cycle.
    total_retired: InstrIndex,
    /// True when the last issue scan proved nothing can issue until an
    /// entry completes or a new one is dispatched: no entry was ready,
    /// none was turned away by a busy functional unit. Cleared by
    /// writeback completions, rename dispatch, and switches; while set,
    /// the issue stage is skipped entirely.
    issue_quiet: bool,
    /// Reused buffer for writeback's resolved-mispredict positions.
    scratch_resolved: Vec<InstrIndex>,
    /// Reused buffer for the issue stage's waiting-entry snapshot.
    scratch_waiting: Vec<InstrIndex>,
    /// Reused buffer for `run_until_retired`'s per-thread targets.
    scratch_targets: Vec<InstrIndex>,
    /// The global event calendar: every wake source becomes a scheduled
    /// entry when the machine quiesces, and `step` advances by popping
    /// the earliest live one (see [`crate::calendar`]).
    calendar: Calendar,
    /// The next cycle at which the switch policy can possibly act
    /// (cached from `next_decision_at`); the per-cycle `each_cycle`
    /// virtual call is skipped until then. `0` forces re-evaluation.
    policy_due: Cycle,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("current", &self.current)
            .field("threads", &self.traces.len())
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine running `traces` (one per hardware thread) under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty, has more than 255 threads, or `cfg`
    /// is invalid.
    pub fn new(
        cfg: MachineConfig,
        traces: Vec<Box<dyn TraceSource>>,
        mut policy: Box<dyn SwitchPolicy>,
    ) -> Self {
        cfg.validate();
        assert!(!traces.is_empty(), "need at least one thread");
        assert!(traces.len() <= 255, "at most 255 threads");
        let n = traces.len();
        policy.on_switch_in(ThreadId::new(0), 0);
        Self {
            hier: Hierarchy::new(&cfg),
            predictor: match cfg.predictor.kind {
                PredictorKind::Gshare => Box::new(Gshare::new(cfg.predictor)),
                PredictorKind::Bimodal => Box::new(Bimodal::new(cfg.predictor.pht_bits)),
                PredictorKind::Tournament => Box::new(Tournament::new(cfg.predictor)),
            },
            btb: Btb::new(cfg.predictor.btb_entries),
            fetch: FetchUnit::new(&cfg),
            rob: Rob::new(cfg.pipeline.rob_size),
            fu: FuPool::new(&cfg.pipeline),
            now: 0,
            current: ThreadId::new(0),
            state: CoreState::Running,
            stats: MachineStats::new(n),
            positions: vec![0; n],
            switch_started: None,
            run_started: None,
            stall_reported: None,
            store_queue: std::collections::VecDeque::new(),
            store_drain_at: 0,
            tracer: None,
            total_retired: 0,
            issue_quiet: false,
            scratch_resolved: Vec::new(),
            scratch_waiting: Vec::new(),
            scratch_targets: Vec::new(),
            calendar: Calendar::new(),
            policy_due: 0,
            cfg,
            traces,
            policy,
        }
    }

    /// Attaches a cycle-level event recorder. The machine emits
    /// switch-out/in and retire-rate events, and the memory hierarchy
    /// (handed a clone of the same buffer) emits L2 miss/fill events;
    /// policies emitting mechanism events should share this tracer too.
    pub fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.hier.attach_tracer(SharedTracer::clone(&tracer));
        self.tracer = Some(tracer);
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The thread currently occupying (or being switched into) the core.
    pub fn current_thread(&self) -> ThreadId {
        self.current
    }

    /// Number of hardware threads.
    pub fn thread_count(&self) -> usize {
        self.traces.len()
    }

    fn multi(&self) -> bool {
        self.traces.len() > 1
    }

    /// Machine statistics (resettable view).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The shared memory hierarchy (for cache/TLB statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Branch predictor statistics.
    pub fn predictor_stats(&self) -> crate::frontend::PredictorStats {
        self.predictor.stats()
    }

    /// The switch policy, for reading back engine-side state.
    pub fn policy(&self) -> &dyn SwitchPolicy {
        &*self.policy
    }

    /// Mutable access to the switch policy (e.g. to clear recorded
    /// history after warm-up).
    pub fn policy_mut(&mut self) -> &mut dyn SwitchPolicy {
        // External mutation can move the policy's scheduled decision
        // points; drop the cached gate so the next tick re-reads them.
        self.policy_due = 0;
        &mut *self.policy
    }

    /// Event-calendar scheduling/dispatch counters (see
    /// [`crate::calendar`]); surfaced by `soe-perf --profile`.
    pub fn calendar_stats(&self) -> &CalendarStats {
        self.calendar.stats()
    }

    /// Architectural position (committed instruction count) of `tid`,
    /// unaffected by [`Machine::reset_stats`].
    pub fn position(&self, tid: ThreadId) -> InstrIndex {
        // soe-lint: allow(slice-index): every per-thread vector is sized to traces.len() at construction and ThreadIds never exceed it
        self.positions[tid.index()]
    }

    /// Funnel for per-thread stats: the single bounds-carrying access
    /// point for `stats.threads` (everywhere a disjoint field borrow is
    /// not required).
    fn thread_stats_mut(&mut self, tid: ThreadId) -> &mut crate::stats::ThreadStats {
        // soe-lint: allow(slice-index): every per-thread vector is sized to traces.len() at construction and ThreadIds never exceed it
        &mut self.stats.threads[tid.index()]
    }

    /// Zeroes the statistics while keeping all microarchitectural and
    /// architectural state (used to discard warm-up, as the paper does
    /// with its first million instructions).
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::new(self.traces.len());
        // Restart the Cycles_j accounting interval at the reset point so
        // the discarded warm-up cycles are not attributed to the thread.
        if self.run_started.is_some() {
            self.run_started = Some(self.now);
        }
        self.switch_started = None;
    }

    // ------------------------------------------------------------------
    // Pipeline stages
    // ------------------------------------------------------------------

    /// Commits queued retired stores at the configured drain rate.
    fn drain_store_buffer(&mut self, now: Cycle) -> bool {
        if self.cfg.store_drain_interval == 0 {
            return false;
        }
        let mut progress = false;
        while self.store_drain_at <= now {
            let Some(addr) = self.store_queue.pop_front() else {
                self.store_drain_at = now + 1;
                break;
            };
            self.hier.access_data(now, addr, true);
            self.store_drain_at = now + self.cfg.store_drain_interval;
            progress = true;
        }
        progress
    }

    /// Completion/writeback: mark finished executions `Done`, resolve
    /// branches. The ROB's completion calendar makes the idle case — no
    /// execution finishing this cycle, the common state inside a miss
    /// shadow — a single comparison instead of a full scan.
    fn writeback(&mut self, now: Cycle) -> bool {
        match self.rob.earliest_completion() {
            Some(c) if c <= now => {}
            _ => return false,
        }
        let mut resolved = std::mem::take(&mut self.scratch_resolved);
        resolved.clear();
        let progress = self.rob.complete_until(now, &mut resolved);
        for idx in resolved.drain(..) {
            self.fetch.branch_executed(idx, now);
        }
        self.scratch_resolved = resolved;
        if progress {
            // Freshly completed producers can wake waiting consumers.
            self.issue_quiet = false;
        }
        progress
    }

    /// Retirement: commit up to `retire_width` completed heads, fire SOE
    /// triggers and policy callbacks. Returns (made-progress,
    /// switch-initiated).
    fn retire_stage(&mut self, now: Cycle) -> (bool, bool) {
        let mut progress = false;
        for _ in 0..self.cfg.pipeline.retire_width {
            let Some(head) = self.rob.head() else { break };
            match head.state {
                EntryState::Done => {
                    // A full store buffer blocks store retirement until a
                    // slot drains.
                    if self.cfg.store_drain_interval > 0
                        && head.uop.kind == UopKind::Store
                        && self.store_queue.len() >= self.cfg.pipeline.store_buffer
                    {
                        break;
                    }
                    let Some(e) = self.rob.pop_head() else { break };
                    progress = true;
                    self.note_retire(now);
                    // Direct index (not thread_stats_mut): the disjoint
                    // field borrow lets `self.hier` run while `t` lives.
                    // soe-lint: allow(slice-index): every per-thread vector is sized to traces.len() at construction
                    let t = &mut self.stats.threads[self.current.index()];
                    t.retired += 1;
                    match e.uop.kind {
                        UopKind::Load => t.loads += 1,
                        UopKind::Store => {
                            t.stores += 1;
                            // Retired stores drain through the store
                            // buffer into the cache hierarchy.
                            if self.cfg.store_drain_interval == 0 {
                                self.hier.access_data(now, e.uop.mem_addr(), true);
                            } else {
                                self.store_queue.push_back(e.uop.mem_addr());
                            }
                        }
                        UopKind::Branch { .. } => {
                            t.branches += 1;
                            if e.mispredicted {
                                t.mispredicts += 1;
                            }
                        }
                        UopKind::Call { .. } => t.calls += 1,
                        UopKind::Return { .. } => {
                            t.returns += 1;
                            if e.mispredicted {
                                t.mispredicts += 1;
                            }
                        }
                        _ => {}
                    }
                    // soe-lint: allow(slice-index): every per-thread vector is sized to traces.len() at construction
                    self.positions[self.current.index()] += 1;
                    self.total_retired += 1;
                    if e.uop.kind == UopKind::Pause
                        && self.multi()
                        && self.policy.on_pause(self.current, now) == SwitchDecision::Switch
                    {
                        self.initiate_switch(now, SwitchReason::Hint);
                        return (true, true);
                    }
                    if self.policy.after_retire(self.current, now) == SwitchDecision::Switch
                        && self.multi()
                    {
                        self.initiate_switch(now, SwitchReason::Forced);
                        return (true, true);
                    }
                }
                _ => {
                    // Head not complete. If it is flagged as handling an
                    // unresolved miss, this is the SOE switch event.
                    if head.mem_pending && self.stall_reported != Some(head.index) {
                        self.stall_reported = Some(head.index);
                        if let EntryState::Executing(done) = head.state {
                            self.policy
                                .observe_miss_latency(self.current, done.saturating_sub(now));
                        }
                        if self.policy.on_miss_stall(self.current, now) == SwitchDecision::Switch
                            && self.multi()
                        {
                            self.thread_stats_mut(self.current).switch_misses += 1;
                            self.initiate_switch(now, SwitchReason::MissEvent);
                            return (progress, true);
                        }
                    }
                    break;
                }
            }
        }
        (progress, false)
    }

    /// Issue: select ready reservation-station entries oldest-first.
    ///
    /// Skipped outright while `issue_quiet` holds: if the previous scan
    /// issued nothing and was never turned away by a busy functional
    /// unit, then every waiting entry was blocked on an unfinished
    /// producer (or forwarding store), and only a completion or a new
    /// dispatch — both of which clear the flag — can change that.
    fn issue_stage(&mut self, now: Cycle) -> bool {
        if self.issue_quiet || self.rob.waiting_count() == 0 {
            return false;
        }
        let mut issued = 0;
        let mut progress = false;
        let mut blocked_on_fu = false;
        let mut waiting = std::mem::take(&mut self.scratch_waiting);
        self.rob.collect_issue_candidates(now, &mut waiting);
        // Calendar-deferred entries are excluded from the scan; the
        // debug sweep keeps the recorded readiness bounds honest.
        #[cfg(debug_assertions)]
        self.rob.assert_deferrals_valid(now);
        // Candidates not re-parked below (issued, or vanished in a
        // squash race) leave the tracker; everything from `unexamined`
        // on goes back to the retry queue.
        let mut unexamined = waiting.len();
        for (pos, idx) in waiting.iter().copied().enumerate() {
            if issued >= self.cfg.pipeline.issue_width {
                unexamined = pos;
                break;
            }
            // `waiting` indexes were read from the ROB this cycle and
            // nothing retires between; a vanished entry is a bug we skip
            // rather than crash on. Only the issue-relevant uop fields
            // are extracted — copying the whole entry per candidate is
            // measurable on the hot path.
            let Some((kind, src_dist, mem_addr)) = self
                .rob
                .get(idx)
                .map(|e| (e.uop.kind, e.uop.src_dist, e.uop.mem_addr))
            else {
                continue;
            };
            let mut blocker = None;
            for d in src_dist {
                if let Some(b) = self.rob.producer_blocker(idx, d, now) {
                    blocker = Some(b);
                    break;
                }
            }
            // Memory disambiguation: a load with an older in-flight store
            // to the same address waits until the store's data is ready,
            // then forwards. A not-done blocking store blocks the load
            // the same way a producer does.
            let mut forward = false;
            if blocker.is_none() && kind == UopKind::Load {
                if let Some(st) = self.rob.older_store_to(
                    idx,
                    // soe-lint: allow(panic-unwrap): a load without an address is a trace-generation bug
                    mem_addr.expect("memory micro-op must carry an address"),
                ) {
                    match st.state {
                        EntryState::Done => forward = true,
                        EntryState::Executing(done) => blocker = Some(Blocker::At(done)),
                        EntryState::Waiting => blocker = Some(Blocker::On(st.index)),
                    }
                }
            }
            match blocker {
                Some(Blocker::At(at)) => {
                    self.rob.defer_issue(idx, at);
                    continue;
                }
                Some(Blocker::On(p)) => {
                    self.rob.park_on_producer(idx, p);
                    continue;
                }
                None => {}
            }
            let Some(fu_done) = self.fu.try_issue(kind, now) else {
                blocked_on_fu = true;
                self.rob.requeue_issue_candidate(idx);
                continue;
            };
            let (done, mem_pending) = match kind {
                UopKind::Load => {
                    // soe-lint: allow(panic-unwrap): a load without an address is a trace-generation bug
                    let addr = mem_addr.expect("memory micro-op must carry an address");
                    let t = self.hier.translate_data(fu_done, addr);
                    if forward {
                        // Store-to-load forwarding: data comes from the
                        // store buffer, two cycles after the address.
                        (t.complete_at.max(fu_done) + 2, t.from_memory)
                    } else {
                        let r = self.hier.access_data(t.complete_at, addr, false);
                        // Optionally treat L1-miss/L2-hit loads as switch
                        // events too (Section 6 extension).
                        let l1_miss = self.cfg.soe.switch_on_l1_miss
                            && r.complete_at > t.complete_at + self.cfg.l1d.hit_latency;
                        (r.complete_at, r.from_memory || t.from_memory || l1_miss)
                    }
                }
                UopKind::Store => {
                    let t = self.hier.translate_data(
                        fu_done,
                        // soe-lint: allow(panic-unwrap): a store without an address is a trace-generation bug
                        mem_addr.expect("memory micro-op must carry an address"),
                    );
                    (t.complete_at.max(fu_done), t.from_memory)
                }
                _ => (fu_done, false),
            };
            if self.rob.set_executing(idx, done.max(now + 1), mem_pending) {
                issued += 1;
                progress = true;
            } else {
                self.rob.requeue_issue_candidate(idx);
            }
        }
        for idx in waiting.iter().copied().skip(unexamined) {
            self.rob.requeue_issue_candidate(idx);
        }
        self.scratch_waiting = waiting;
        self.issue_quiet = issued == 0 && !blocked_on_fu;
        progress
    }

    /// Rename/allocate: move front-end entries into the ROB.
    fn rename_stage(&mut self, now: Cycle) -> bool {
        let mut progress = false;
        let (mut waiting, mut loads, mut stores) = self.rob.occupancy();
        for _ in 0..self.cfg.pipeline.rename_width {
            let Some(e) = self.fetch.peek_ready(now) else {
                break;
            };
            if self.rob.is_full() || waiting >= self.cfg.pipeline.rs_size {
                break;
            }
            match e.uop.kind {
                UopKind::Load if loads >= self.cfg.pipeline.load_buffer => break,
                UopKind::Store if stores >= self.cfg.pipeline.store_buffer => break,
                _ => {}
            }
            // The loop peeked Some immediately above; a pop miss means
            // the fetch queue changed under us — stop dispatching.
            let Some(e) = self.fetch.pop_ready(now) else {
                break;
            };
            match e.uop.kind {
                UopKind::Load => loads += 1,
                UopKind::Store => stores += 1,
                _ => {}
            }
            waiting += 1;
            self.rob.push(e.index, e.uop, e.mispredicted);
            progress = true;
        }
        if progress {
            // Fresh entries may be immediately ready to issue.
            self.issue_quiet = false;
        }
        progress
    }

    fn fetch_stage(&mut self, now: Cycle) -> bool {
        let Machine {
            fetch,
            traces,
            hier,
            predictor,
            btb,
            current,
            ..
        } = self;
        // soe-lint: allow(slice-index): every per-thread vector is sized to traces.len() at construction
        fetch.tick(now, &*traces[current.index()], hier, &mut **predictor, btb) > 0
    }

    // ------------------------------------------------------------------
    // Thread switching
    // ------------------------------------------------------------------

    fn note_retire(&mut self, now: Cycle) {
        if self.run_started.is_none() {
            self.run_started = Some(now);
            if let Some(start) = self.switch_started.take() {
                self.stats.switch_overhead_cycles += now - start;
                self.stats.measured_switches += 1;
            }
        }
    }

    fn initiate_switch(&mut self, now: Cycle, reason: SwitchReason) {
        debug_assert!(self.multi(), "switching requires multiple threads");
        let cur = self.current;
        if let Some(start) = self.run_started.take() {
            self.thread_stats_mut(cur).running_cycles += now - start;
        }
        match reason {
            SwitchReason::MissEvent => self.thread_stats_mut(cur).event_switches += 1,
            SwitchReason::Forced => self.thread_stats_mut(cur).forced_switches += 1,
            SwitchReason::Hint => self.thread_stats_mut(cur).hint_switches += 1,
        }
        self.stats.total_switches += 1;
        if let Some(t) = &self.tracer {
            t.borrow_mut()
                .emit(now, EventKind::SwitchOut { tid: cur, reason });
        }
        self.policy.on_switch_out(cur, now, reason);
        // Drain: squash everything un-retired; in-flight cache fills keep
        // going (MSHR timing lives in the hierarchy).
        self.rob.squash(0);
        let threads = self.traces.len();
        let rotation = ThreadId::new(((cur.index() + 1) % threads) as u8);
        // Arbitration disciplines may pick the incoming thread; an absent
        // or out-of-range pick falls back to the fixed rotation so a
        // misbehaving policy degrades to round-robin, never wedges.
        let next = match self.policy.pick_next(cur, threads, now) {
            Some(pick) if pick.index() < threads => pick,
            _ => rotation,
        };
        self.state = CoreState::Draining {
            until: now + self.cfg.soe.drain_latency,
            next,
        };
        self.switch_started = Some(now);
        self.stall_reported = None;
        self.issue_quiet = false;
        // The outgoing thread's scheduled decisions die with the switch.
        self.policy_due = 0;
    }

    fn complete_switch_in(&mut self, next: ThreadId, now: Cycle) {
        self.current = next;
        self.state = CoreState::Running;
        let pos = self.position(next);
        self.rob.squash(pos);
        self.fetch.restart(pos, now);
        self.run_started = None;
        self.stall_reported = None;
        self.issue_quiet = false;
        // `on_switch_in` restarts quota clocks; re-read the schedule.
        self.policy_due = 0;
        if let Some(t) = &self.tracer {
            t.borrow_mut().emit(now, EventKind::SwitchIn { tid: next });
        }
        self.policy.on_switch_in(next, now);
    }

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    /// Advances the machine by one cycle. Returns whether any pipeline
    /// activity occurred (used by the quiescent fast-forward).
    pub fn tick(&mut self) -> bool {
        let now = self.now;
        if let Some(t) = &self.tracer {
            // Watermark advance + retire-rate samples. Runs before any
            // stage so a sample boundary at `now` is stamped with the
            // count *before* this cycle's retirements — identically
            // whether the boundary was reached tick-by-tick or jumped
            // over by the quiescent fast-forward.
            t.borrow_mut().advance(now, self.total_retired);
        }
        if let CoreState::Draining { until, next } = self.state {
            if now >= until {
                self.complete_switch_in(next, now);
            } else {
                // Nothing but the cycle counter evolves during a drain
                // (stages, store buffer and policy are all skipped), so
                // report no progress and let the quiescent fast-forward
                // jump straight to `until`.
                self.now += 1;
                return false;
            }
        }
        self.fu.begin_cycle(now);
        let mut progress = self.drain_store_buffer(now);
        progress |= self.writeback(now);
        let (retired, switched) = self.retire_stage(now);
        progress |= retired;
        if !switched {
            progress |= self.issue_stage(now);
            progress |= self.rename_stage(now);
            progress |= self.fetch_stage(now);
            // The policy gate: `each_cycle` only ever acts at cycles its
            // own `next_decision_at` announces (Δ recalculations, quota
            // expiries — the policy-conformance matrix pins this), so
            // the virtual call is skipped until the cached due cycle.
            if self.multi() && now >= self.policy_due {
                if self.policy.each_cycle(self.current, now) == SwitchDecision::Switch {
                    self.initiate_switch(now, SwitchReason::Forced);
                    progress = true;
                } else {
                    // A decision point reported at `now` was just taken
                    // (declined); the next distinct one is later.
                    self.policy_due = self
                        .policy
                        .next_decision_at(self.current, now)
                        .map_or(Cycle::MAX, |c| c.max(now + 1));
                }
            }
        } else {
            progress = true;
        }
        self.now = now + 1;
        self.stats.cycles = self.now;
        progress
    }

    /// Schedules every live wake source on the event calendar. Called at
    /// quiesce time; per-kind dedup makes re-scheduling an unchanged
    /// source free.
    ///
    /// O(log calendar): the earliest in-flight completion comes from the
    /// ROB's incrementally maintained completion heap instead of a full
    /// entry scan (a debug assertion in the ROB cross-checks the two),
    /// and the remaining sources are O(1) front-end and policy
    /// timestamps. Cache fills and bus grants need no kinds of their
    /// own: the hierarchy is timestamp-passing, so they surface as the
    /// completion/resume timestamps of the accesses that triggered them.
    fn schedule_wake_events(&mut self) {
        if let CoreState::Draining { until, .. } = self.state {
            // During a drain the stages, the store buffer and the policy
            // are all skipped, so the switch-in is the only event.
            self.calendar.schedule(CalendarEvent::DrainDone, until);
            return;
        }
        if let Some(c) = self.rob.earliest_completion() {
            self.calendar.schedule(CalendarEvent::RobComplete, c);
        }
        if let Some(c) = self.fetch.next_activity() {
            self.calendar
                .schedule(CalendarEvent::FetchResume, c.max(self.now));
        }
        if let Some(c) = self.fetch.front_ready_at() {
            self.calendar
                .schedule(CalendarEvent::FrontReady, c.max(self.now));
        }
        if !self.store_queue.is_empty() {
            self.calendar.schedule(
                CalendarEvent::StoreDrain,
                self.store_drain_at.max(self.now + 1),
            );
        }
        if self.multi() {
            // A scheduled policy decision (Δ-window recalculation, cycle
            // quota) is an event too: stopping the jump there keeps
            // fast-forward runs cycle-exact with ticked ones.
            // Clamp to `now`, not `now + 1`: after a no-progress tick
            // `self.now` is the next *unprocessed* cycle, and a decision
            // due exactly there must suppress the jump (`step` skips
            // jumps to `now`) so the ordinary tick consults the policy on
            // time rather than one cycle late.
            if let Some(c) = self.policy.next_decision_at(self.current, self.now) {
                self.calendar
                    .schedule(CalendarEvent::PolicyDecision, c.max(self.now));
            }
        }
    }

    /// Revalidates a popped calendar entry against live component state:
    /// `true` iff the source still wakes at exactly `cycle`. A stale
    /// entry (its source squashed, switched away, or re-scheduled) is
    /// superseded and safe to discard, because every quiesce re-schedules
    /// all live sources before the calendar is consulted.
    fn event_valid(&self, kind: CalendarEvent, cycle: Cycle) -> bool {
        if let CoreState::Draining { until, .. } = self.state {
            return kind == CalendarEvent::DrainDone && cycle == until;
        }
        match kind {
            CalendarEvent::DrainDone => false,
            CalendarEvent::RobComplete => self.rob.earliest_completion() == Some(cycle),
            CalendarEvent::FetchResume => {
                self.fetch.next_activity().map(|c| c.max(self.now)) == Some(cycle)
            }
            CalendarEvent::FrontReady => {
                self.fetch.front_ready_at().map(|c| c.max(self.now)) == Some(cycle)
            }
            CalendarEvent::StoreDrain => {
                !self.store_queue.is_empty() && self.store_drain_at.max(self.now + 1) == cycle
            }
            CalendarEvent::PolicyDecision => {
                self.multi()
                    && self
                        .policy
                        .next_decision_at(self.current, self.now)
                        .map(|c| c.max(self.now))
                        == Some(cycle)
            }
        }
    }

    /// One step: tick, and on quiescence advance `now` to the earliest
    /// live calendar entry (clamped to `limit`, so a run never
    /// overshoots its requested end cycle).
    fn step(&mut self, limit: Cycle) -> Result<(), SimError> {
        let progress = self.tick();
        if !progress && self.cfg.fast_forward {
            self.schedule_wake_events();
            loop {
                let Some((cycle, kind)) = self.calendar.peek() else {
                    return Err(SimError::Wedged {
                        cycle: self.now,
                        thread: self.current,
                        rob_len: self.rob.len(),
                    });
                };
                if !self.event_valid(kind, cycle) {
                    self.calendar.discard_top();
                    continue;
                }
                if cycle > self.now {
                    self.calendar.dispatch_top();
                    self.now = cycle.min(limit);
                    if matches!(self.state, CoreState::Running) {
                        // Drain jumps leave `stats.cycles` where ticked
                        // drains left it: it is refreshed by the first
                        // post-drain tick.
                        self.stats.cycles = self.now;
                    }
                }
                // An entry due exactly at `now` stays on the calendar;
                // the next tick processes that cycle and the entry is
                // dispatched (or superseded) afterwards.
                break;
            }
        }
        Ok(())
    }

    /// Runs for exactly `cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if the machine wedges (see [`Machine::try_run_cycles`] for
    /// the non-panicking form).
    pub fn run_cycles(&mut self, cycles: Cycle) {
        if let Err(e) = self.try_run_cycles(cycles, None) {
            // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use try_run_cycles
            panic!("{e}");
        }
    }

    /// Runs for exactly `cycles` simulated cycles, returning a structured
    /// error instead of panicking, with an optional forward-progress
    /// watchdog.
    ///
    /// With `stall_window = Some(w)`, the run fails with
    /// [`SimError::Stalled`] if no instruction retires (on any thread) for
    /// `w` consecutive cycles. Pick `w` far above the longest legitimate
    /// stall — the 300-cycle memory latency plus TLB walks, bus queueing
    /// and drain — so only a genuinely hung simulation trips it.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] on watchdog expiry, [`SimError::Wedged`] if
    /// the machine provably cannot make progress again.
    pub fn try_run_cycles(
        &mut self,
        cycles: Cycle,
        stall_window: Option<Cycle>,
    ) -> Result<(), SimError> {
        let end = self.now + cycles;
        let mut last_retired = self.total_retired;
        let mut last_progress = self.now;
        while self.now < end {
            self.step(end)?;
            if let Some(window) = stall_window {
                let retired = self.total_retired;
                if retired != last_retired {
                    last_retired = retired;
                    last_progress = self.now;
                } else if self.now - last_progress >= window {
                    return Err(SimError::Stalled {
                        cycle: self.now,
                        window,
                        thread: self.current,
                        retired,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs until every thread has committed at least `instrs` further
    /// instructions (measured from the current architectural positions).
    ///
    /// # Panics
    ///
    /// Panics if the target is not reached within `max_cycles` additional
    /// cycles — a liveness guard against mis-configured experiments.
    pub fn run_until_retired(&mut self, instrs: u64, max_cycles: Cycle) {
        let mut targets = std::mem::take(&mut self.scratch_targets);
        targets.clear();
        targets.extend(self.positions.iter().map(|p| p + instrs));
        let deadline = self.now + max_cycles;
        while self.positions.iter().zip(&targets).any(|(p, t)| p < t) {
            assert!(
                self.now < deadline,
                "run_until_retired: {} instructions not reached within {} cycles \
                 (positions {:?})",
                instrs,
                max_cycles,
                self.positions
            );
            if let Err(e) = self.step(deadline) {
                // soe-lint: allow(panic-macro): documented panicking wrapper around the try_ stepper
                panic!("{e}");
            }
        }
        self.scratch_targets = targets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{NeverSwitch, SwitchOnEvent};
    use crate::trace::{AluTrace, PatternTrace};
    use crate::uop::Uop;

    fn single(trace: Box<dyn TraceSource>) -> Machine {
        Machine::new(
            MachineConfig::test_config(),
            vec![trace],
            Box::new(NeverSwitch::new()),
        )
    }

    #[test]
    fn alu_trace_reaches_multi_issue_ipc() {
        // Default config: the 4 KiB code footprint fits the 32 KiB L1I.
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![Box::new(AluTrace::new())],
            Box::new(NeverSwitch::new()),
        );
        m.run_cycles(30_000); // cold-start: I-cache warm-up
        m.reset_stats();
        let start = m.now();
        m.run_cycles(20_000);
        let ipc = m.stats().total_retired() as f64 / (m.now() - start) as f64;
        // Independent single-cycle ops: limited by rename width (4) and
        // ALU count (3); expect close to 3.
        assert!(ipc > 2.0, "ipc = {ipc}");
        assert!(ipc <= 4.0, "ipc = {ipc}");
    }

    #[test]
    fn dependent_chain_runs_at_one_ipc() {
        let t = PatternTrace::new("chain", vec![Uop::new(UopKind::Alu, 0x40).with_deps(1, 0)]);
        let mut m = single(Box::new(t));
        m.run_cycles(20_000);
        let ipc = m.stats().ipc();
        assert!(ipc > 0.8 && ipc <= 1.05, "ipc = {ipc}");
    }

    #[test]
    fn missy_loads_stall_single_thread() {
        // Loads striding through memory: every line is cold, so the core
        // spends most cycles waiting out memory latency.
        #[derive(Debug)]
        struct Stream;
        impl TraceSource for Stream {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                if i.is_multiple_of(4) {
                    Uop::new(UopKind::Load, 0x40 + (i % 64) * 4).with_mem(0x10_0000 + i * 64)
                } else {
                    Uop::new(UopKind::Alu, 0x40 + (i % 64) * 4)
                }
            }
            fn name(&self) -> &str {
                "stream"
            }
        }
        let mut m = single(Box::new(Stream));
        m.run_cycles(50_000);
        let ipc = m.stats().ipc();
        // With MLP the core overlaps misses, but IPC must still be well
        // below the ALU-bound case.
        assert!(ipc < 2.0, "ipc = {ipc}");
        assert!(m.hierarchy().stats().data_l2_misses > 100);
    }

    #[test]
    fn fast_forward_is_invisible_in_results() {
        let mk = |ff: bool| {
            let mut cfg = MachineConfig::test_config();
            cfg.fast_forward = ff;
            #[derive(Debug)]
            struct Stream;
            impl TraceSource for Stream {
                fn uop_at(&self, i: InstrIndex) -> Uop {
                    if i.is_multiple_of(7) {
                        Uop::new(UopKind::Load, 0x40).with_mem(0x20_0000 + i * 64)
                    } else {
                        Uop::new(UopKind::Alu, 0x44).with_deps(1, 0)
                    }
                }
            }
            let mut m = Machine::new(cfg, vec![Box::new(Stream)], Box::new(NeverSwitch::new()));
            m.run_cycles(30_000);
            (m.stats().total_retired(), m.stats().cycles)
        };
        let (r1, c1) = mk(true);
        let (r2, c2) = mk(false);
        assert_eq!(r2, r1, "fast-forward changed retirement count");
        assert_eq!(c2, c1);
    }

    #[test]
    fn fast_forward_is_invisible_under_soe_with_tracer() {
        use crate::obs::{SharedTracer, TraceConfig, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;
        // Two-thread SOE run with the tracer attached: jumps must leave
        // the full statistics block and the event stream untouched, not
        // just the retirement totals. (The fairness-policy variant lives
        // in the root `fast_forward_invariance` suite — the policy is a
        // client crate.)
        let mk = |ff: bool| {
            let mut cfg = MachineConfig::test_config();
            cfg.fast_forward = ff;
            let mut m = Machine::new(
                cfg,
                vec![
                    Box::new(MissEvery {
                        ipm: 2_000,
                        region: 0x100_0000,
                    }),
                    Box::new(MissEvery {
                        ipm: 8,
                        region: 0x900_0000,
                    }),
                ],
                Box::new(SwitchOnEvent::new()),
            );
            let tracer: SharedTracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
            m.attach_tracer(Rc::clone(&tracer));
            m.run_cycles(60_000);
            let trace = tracer.borrow_mut().take();
            (m.stats().clone(), trace)
        };
        let (stats_jump, trace_jump) = mk(true);
        let (stats_tick, trace_tick) = mk(false);
        assert!(
            stats_tick.total_switches > 0,
            "workload never switched; the test is vacuous"
        );
        assert!(!trace_tick.events.is_empty(), "no events traced");
        assert_eq!(
            stats_tick, stats_jump,
            "fast-forward changed SOE statistics"
        );
        assert_eq!(
            trace_tick, trace_jump,
            "fast-forward changed the trace stream"
        );
    }

    /// A synthetic thread missing the L2 every `ipm` instructions
    /// (streaming loads in a private address region).
    #[derive(Debug)]
    struct MissEvery {
        ipm: u64,
        region: u64,
    }
    impl TraceSource for MissEvery {
        fn uop_at(&self, i: InstrIndex) -> Uop {
            let pc = self.region + 0x40 + (i % 64) * 4;
            if i.is_multiple_of(self.ipm) {
                // One fresh line per miss, streaming densely so the page
                // working set stays TLB-friendly.
                let ordinal = i / self.ipm;
                Uop::new(UopKind::Load, pc).with_mem(self.region + 0x100_0000 + ordinal * 64)
            } else {
                Uop::new(UopKind::Alu, pc)
            }
        }
        fn name(&self) -> &str {
            "miss-every"
        }
    }

    #[test]
    fn soe_starves_a_thread_behind_a_never_missing_one() {
        // Thread 0 never misses: plain SOE never switches away from it.
        // This is exactly the starvation problem the paper addresses.
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![
                Box::new(AluTrace::new()),
                Box::new(MissEvery {
                    ipm: 8,
                    region: 0x900_0000,
                }),
            ],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(50_000);
        let s = m.stats();
        assert_eq!(s.total_switches, 0);
        assert_eq!(s.threads[1].retired, 0, "thread 1 completely starved");
    }

    #[test]
    fn soe_switches_on_l2_miss_and_runs_both_threads() {
        // Thread 0: rare misses (high IPM). Thread 1: misses constantly.
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![
                Box::new(MissEvery {
                    ipm: 2_000,
                    region: 0x100_0000,
                }),
                Box::new(MissEvery {
                    ipm: 8,
                    region: 0x900_0000,
                }),
            ],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(200_000);
        let s = m.stats();
        assert!(s.total_switches > 10, "switches = {}", s.total_switches);
        assert!(s.threads[0].retired > 0);
        assert!(s.threads[1].retired > 0);
        assert!(
            s.threads[1].switch_misses > 0,
            "missy thread must have caused event switches"
        );
        // The low-miss thread should get the lion's share of instructions.
        assert!(s.threads[0].retired > s.threads[1].retired);
    }

    #[test]
    fn switch_latency_is_in_the_papers_ballpark() {
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![
                Box::new(MissEvery {
                    ipm: 500,
                    region: 0x100_0000,
                }),
                Box::new(MissEvery {
                    ipm: 500,
                    region: 0x900_0000,
                }),
            ],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(300_000);
        let lat = m.stats().avg_switch_latency();
        assert!(
            (15.0..=45.0).contains(&lat),
            "avg switch latency {lat} outside the ~25-cycle ballpark"
        );
    }

    #[test]
    fn single_thread_ignores_forced_switch_decisions() {
        // A policy that always wants to switch must be harmless with one
        // thread.
        struct Always;
        impl SwitchPolicy for Always {
            fn name(&self) -> &str {
                "always"
            }
            fn after_retire(&mut self, _: ThreadId, _: Cycle) -> SwitchDecision {
                SwitchDecision::Switch
            }
            fn each_cycle(&mut self, _: ThreadId, _: Cycle) -> SwitchDecision {
                SwitchDecision::Switch
            }
        }
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![Box::new(AluTrace::new())],
            Box::new(Always),
        );
        m.run_cycles(5_000);
        assert_eq!(m.stats().total_switches, 0);
        assert!(m.stats().total_retired() > 0);
    }

    #[test]
    fn reset_stats_keeps_architectural_position() {
        let mut m = single(Box::new(AluTrace::new()));
        m.run_cycles(5_000);
        let pos = m.position(ThreadId::new(0));
        assert!(pos > 0);
        m.reset_stats();
        assert_eq!(m.stats().total_retired(), 0);
        assert_eq!(m.position(ThreadId::new(0)), pos);
        m.run_cycles(1_000);
        assert!(m.position(ThreadId::new(0)) > pos);
    }

    #[test]
    fn stall_detector_flags_no_retirement_within_window() {
        // Every instruction misses to memory (100 cycles in test_config),
        // so retirement gaps dwarf a 10-cycle window: the watchdog must
        // trip deterministically.
        let mut m = single(Box::new(MissEvery {
            ipm: 1,
            region: 0x100_0000,
        }));
        let err = m.try_run_cycles(50_000, Some(10)).unwrap_err();
        match err {
            SimError::Stalled { window, .. } => assert_eq!(window, 10),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn stall_detector_passes_a_healthy_run() {
        let mut m = single(Box::new(MissEvery {
            ipm: 8,
            region: 0x100_0000,
        }));
        m.try_run_cycles(50_000, Some(10_000))
            .expect("well above the longest legitimate stall");
        assert!(m.stats().total_retired() > 0);
    }

    #[test]
    fn try_run_cycles_matches_run_cycles() {
        let run = |checked: bool| {
            let mut m = single(Box::new(MissEvery {
                ipm: 16,
                region: 0x100_0000,
            }));
            if checked {
                m.try_run_cycles(30_000, Some(20_000)).unwrap();
            } else {
                m.run_cycles(30_000);
            }
            (m.stats().total_retired(), m.now())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn run_until_retired_reaches_target() {
        let mut m = single(Box::new(AluTrace::new()));
        m.run_until_retired(10_000, 1_000_000);
        assert!(m.position(ThreadId::new(0)) >= 10_000);
    }

    #[test]
    fn branches_are_counted_and_mispredicts_resolve() {
        // A branch whose direction is a pseudo-random function of its
        // index: plenty of mispredicts, all of which must resolve.
        #[derive(Debug)]
        struct Branchy;
        impl TraceSource for Branchy {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                if i % 4 == 3 {
                    let h = i.wrapping_mul(0x9e3779b97f4a7c15);
                    Uop::new(
                        UopKind::Branch {
                            taken: h >> 60 & 1 == 1,
                            target: 0x40,
                        },
                        0x40 + (i % 16) * 4,
                    )
                } else {
                    Uop::new(UopKind::Alu, 0x40 + (i % 16) * 4)
                }
            }
        }
        let mut m = single(Box::new(Branchy));
        m.run_cycles(50_000);
        let t = m.stats().threads[0];
        assert!(t.branches > 1_000);
        assert!(t.mispredicts > 100, "mispredicts = {}", t.mispredicts);
        assert!(t.mispredicts < t.branches);
        // Mispredicts cost cycles: IPC below the ALU-bound case.
        assert!(m.stats().ipc() < 2.5);
    }

    /// Loads cycling a working set that fits the L2 but not the L1D:
    /// steady-state L1 misses that hit the L2.
    #[derive(Debug)]
    struct L2Resident {
        region: u64,
    }
    impl TraceSource for L2Resident {
        fn uop_at(&self, i: InstrIndex) -> Uop {
            let pc = self.region + 0x40 + (i % 64) * 4;
            if i.is_multiple_of(4) {
                // 4096 lines = 256 KiB: 8x the L1D, 1/8 of the L2.
                let line = (i / 4) % 4_096;
                Uop::new(UopKind::Load, pc).with_mem(self.region + 0x100_0000 + line * 64)
            } else {
                Uop::new(UopKind::Alu, pc)
            }
        }
        fn name(&self) -> &str {
            "l2-resident"
        }
    }

    #[test]
    fn l1_miss_switching_raises_switch_rate() {
        // With switch_on_l1_miss, loads served by the L2 also trigger
        // switches: the same workload must switch much more often.
        let count_switches = |l1: bool| {
            let mut cfg = MachineConfig::default();
            cfg.soe.switch_on_l1_miss = l1;
            let mut m = Machine::new(
                cfg,
                vec![
                    Box::new(L2Resident { region: 0x100_0000 }),
                    Box::new(L2Resident { region: 0x900_0000 }),
                ],
                Box::new(SwitchOnEvent::new()),
            );
            // Warm the L2 first so steady-state behaviour dominates the
            // count (the cold pass ping-pongs both configurations alike).
            m.run_cycles(600_000);
            m.reset_stats();
            m.run_cycles(600_000);
            m.stats().total_switches
        };
        let base = count_switches(false);
        let with_l1 = count_switches(true);
        assert!(
            with_l1 > 2 * base.max(1),
            "L1-event switching must add switches: {with_l1} vs {base}"
        );
    }

    #[test]
    fn observe_miss_latency_reports_remaining_stall() {
        struct Capture {
            seen: Vec<Cycle>,
        }
        impl SwitchPolicy for Capture {
            fn name(&self) -> &str {
                "capture"
            }
            fn observe_miss_latency(&mut self, _tid: ThreadId, remaining: Cycle) {
                self.seen.push(remaining);
            }
            fn on_miss_stall(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
                SwitchDecision::Switch
            }
            fn as_any(&self) -> Option<&dyn std::any::Any> {
                Some(self)
            }
        }
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![
                Box::new(MissEvery {
                    ipm: 1_000,
                    region: 0x100_0000,
                }),
                Box::new(MissEvery {
                    ipm: 1_000,
                    region: 0x900_0000,
                }),
            ],
            Box::new(Capture { seen: Vec::new() }),
        );
        m.run_cycles(300_000);
        let seen = &m
            .policy()
            .as_any()
            .and_then(|a| a.downcast_ref::<Capture>())
            .unwrap()
            .seen;
        assert!(!seen.is_empty());
        let mean = seen.iter().sum::<Cycle>() as f64 / seen.len() as f64;
        // Exposed latency is below the full 300-cycle memory latency
        // (out-of-order overlap) but must remain a large fraction of it.
        // Exposed latency clusters near the 300-cycle memory latency
        // (plus L2/bus time, minus out-of-order overlap).
        assert!(
            (50.0..=400.0).contains(&mean),
            "mean exposed latency {mean}"
        );
    }

    #[test]
    fn pause_hints_switch_threads_and_are_counted() {
        // Thread 0 pauses every 64 instructions; thread 1 is pure ALU.
        #[derive(Debug)]
        struct Pausey;
        impl TraceSource for Pausey {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                let pc = 0x5000 + (i % 64) * 4;
                if i % 64 == 7 {
                    Uop::new(UopKind::Pause, pc)
                } else {
                    Uop::new(UopKind::Alu, pc)
                }
            }
        }
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![Box::new(Pausey), Box::new(Pausey)],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(100_000);
        let s = m.stats();
        assert!(
            s.threads[0].hint_switches > 10,
            "pauses must switch: {:?}",
            s.threads[0]
        );
        assert!(s.threads[1].hint_switches > 10);
        assert!(s.threads[1].retired > 0, "the other thread gets the core");
        // A single-thread machine ignores the hint entirely.
        let mut alone = Machine::new(
            MachineConfig::default(),
            vec![Box::new(Pausey)],
            Box::new(NeverSwitch::new()),
        );
        alone.run_cycles(50_000);
        assert_eq!(alone.stats().total_switches, 0);
        assert!(alone.stats().total_retired() > 0);
    }

    #[test]
    fn matched_calls_and_returns_predict_via_ras() {
        // Pattern: [alu, call f, f-body alu, return, alu, ...] with the
        // return target equal to the call's fall-through — a RAS-friendly
        // stream that must retire with almost no mispredicts.
        #[derive(Debug)]
        struct Callsy;
        impl TraceSource for Callsy {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                let block = i / 8;
                let base = 0x4000 + (block % 32) * 64;
                match i % 8 {
                    0..=2 => Uop::new(UopKind::Alu, base + (i % 8) * 4),
                    3 => Uop::new(UopKind::Call { target: 0x9000 }, base + 12),
                    4 | 5 => Uop::new(UopKind::Alu, 0x9000 + (i % 8 - 4) * 4),
                    6 => Uop::new(UopKind::Return { target: base + 16 }, 0x9008),
                    _ => Uop::new(UopKind::Alu, base + 16),
                }
            }
        }
        let mut m = single(Box::new(Callsy));
        m.run_cycles(60_000);
        let t = m.stats().threads[0];
        assert!(t.calls > 500, "calls {}", t.calls);
        assert!(t.returns > 500, "returns {}", t.returns);
        assert!(
            t.mispredicts < t.returns / 10,
            "RAS should predict matched returns: {} mispredicts / {} returns",
            t.mispredicts,
            t.returns
        );
        assert!(m.stats().ipc() > 0.8, "ipc {}", m.stats().ipc());
    }

    #[test]
    fn unmatched_returns_mispredict() {
        // Returns with no preceding call: the RAS has nothing useful.
        #[derive(Debug)]
        struct Retsy;
        impl TraceSource for Retsy {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                let base = 0x4000 + (i % 256) * 4;
                if i % 16 == 15 {
                    Uop::new(UopKind::Return { target: base + 4 }, base)
                } else {
                    Uop::new(UopKind::Alu, base)
                }
            }
        }
        let mut m = single(Box::new(Retsy));
        m.run_cycles(60_000);
        let t = m.stats().threads[0];
        assert!(t.returns > 100);
        assert!(
            t.mispredicts as f64 > t.returns as f64 * 0.5,
            "bogus returns must mispredict: {} of {}",
            t.mispredicts,
            t.returns
        );
    }

    #[test]
    fn predictor_kind_is_configurable_and_matters() {
        // An alternating branch: gshare-class predictors learn it,
        // bimodal cannot.
        #[derive(Debug)]
        struct Alternating;
        impl TraceSource for Alternating {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                // One static branch (fixed PC) whose outcome alternates
                // per dynamic instance.
                let pc = 0x40 + (i % 4) * 4;
                if i % 4 == 3 {
                    Uop::new(
                        UopKind::Branch {
                            taken: (i / 4).is_multiple_of(2),
                            target: 0x40,
                        },
                        pc,
                    )
                } else {
                    Uop::new(UopKind::Alu, pc)
                }
            }
        }
        let run = |kind: PredictorKind| {
            let mut predictor = MachineConfig::default().predictor;
            predictor.kind = kind;
            let cfg = MachineConfig {
                predictor,
                ..MachineConfig::default()
            };
            let mut m = Machine::new(
                cfg,
                vec![Box::new(Alternating)],
                Box::new(NeverSwitch::new()),
            );
            m.run_cycles(60_000);
            (
                m.predictor_stats().mispredict_rate(),
                m.stats().total_retired(),
            )
        };
        let (gshare, retired_g) = run(PredictorKind::Gshare);
        let (bimodal, retired_b) = run(PredictorKind::Bimodal);
        let (tournament, _) = run(PredictorKind::Tournament);
        assert!(bimodal > 0.3, "bimodal cannot learn alternation: {bimodal}");
        assert!(gshare < 0.05, "gshare learns alternation: {gshare}");
        assert!(tournament < 0.1, "tournament follows gshare: {tournament}");
        assert!(
            retired_g > retired_b,
            "better prediction must retire more: {retired_g} vs {retired_b}"
        );
    }

    #[test]
    fn store_buffer_drain_throttles_store_bursts() {
        // A store-heavy stream: with a slow drain (one commit per 8
        // cycles), retirement must stall on the full buffer and IPC drop
        // well below the instant-commit configuration.
        #[derive(Debug)]
        struct Storey;
        impl TraceSource for Storey {
            fn uop_at(&self, i: InstrIndex) -> Uop {
                let pc = 0x40 + (i % 32) * 4;
                if i.is_multiple_of(2) {
                    Uop::new(UopKind::Store, pc).with_mem(0x9000 + (i % 64) * 8)
                } else {
                    Uop::new(UopKind::Alu, pc)
                }
            }
        }
        let run = |interval: Cycle| {
            let cfg = MachineConfig {
                store_drain_interval: interval,
                ..MachineConfig::default()
            };
            let mut m = Machine::new(cfg, vec![Box::new(Storey)], Box::new(NeverSwitch::new()));
            m.run_cycles(60_000);
            m.stats().ipc()
        };
        let instant = run(0);
        let fast = run(1);
        let slow = run(8);
        // One store every other instruction: a 1-cycle drain keeps up,
        // an 8-cycle drain bounds IPC near 1/(8*0.5) = 0.25.
        assert!(
            (fast - instant).abs() / instant < 0.15,
            "fast {fast} vs instant {instant}"
        );
        assert!(slow < 0.35, "slow drain must throttle: {slow}");
        assert!(slow > 0.15, "but not deadlock: {slow}");
    }

    #[test]
    fn store_load_forwarding_keeps_ipc_high() {
        // store to X; load from X right after: forwarding avoids the
        // cache round trip entirely.
        let t = PatternTrace::new(
            "fwd",
            vec![
                Uop::new(UopKind::Store, 0x80).with_mem(0x5000),
                Uop::new(UopKind::Load, 0x84)
                    .with_mem(0x5000)
                    .with_deps(1, 0),
                Uop::new(UopKind::Alu, 0x88).with_deps(1, 0),
                Uop::new(UopKind::Alu, 0x8c),
            ],
        );
        let mut m = single(Box::new(t));
        m.run_cycles(20_000);
        assert!(m.stats().ipc() > 0.5, "ipc = {}", m.stats().ipc());
    }
}
