//! A cycle-level out-of-order core and memory-hierarchy simulator with
//! Switch-on-Event (SOE) multithreading — the substrate of the
//! reproduction of *"Fairness and Throughput in Switch on Event
//! Multithreading"* (Gabor, Weiss, Mendelson; MICRO 2006).
//!
//! The simulated processor is derived from the paper's P6-style machine
//! (Table 3):
//!
//! * an in-order front end — fetch with gshare + BTB branch prediction,
//!   an iTLB and L1 instruction cache, and a depth-modelled fetch/rename
//!   pipeline,
//! * an out-of-order back end — re-order buffer, reservation stations,
//!   ALU/MUL/DIV/load/store units, store-to-load forwarding, in-order
//!   retirement,
//! * a shared memory hierarchy — L1I/L1D, a unified L2 (the last level),
//!   MSHRs allowing overlapped misses, a pipelined bus and constant
//!   300-cycle memory, plus i/d TLBs whose page walks traverse the L2,
//! * SOE thread switching — a micro-op flagged in the ROB as handling an
//!   unresolved L2 miss triggers a switch when it reaches the retirement
//!   head; switching drains the pipeline (6 cycles) and refills it,
//!   accumulating to roughly the paper's 25-cycle switch latency; caches,
//!   TLBs and predictor state are shared and survive switches.
//!
//! Thread-switch *policy* is pluggable via [`SwitchPolicy`]; the paper's
//! fairness-enforcement mechanism is implemented on top of this trait in
//! the `soe-core` crate.
//!
//! # Examples
//!
//! Plain SOE (`F = 0`) over two threads:
//!
//! ```
//! use soe_sim::{AluTrace, Machine, MachineConfig, SwitchOnEvent};
//!
//! let mut machine = Machine::new(
//!     MachineConfig::test_config(),
//!     vec![Box::new(AluTrace::new()), Box::new(AluTrace::new())],
//!     Box::new(SwitchOnEvent::new()),
//! );
//! machine.run_cycles(10_000);
//! assert!(machine.stats().total_retired() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calendar;
pub mod config;
mod core;
mod error;
pub mod frontend;
pub mod mem;
pub mod obs;
mod stats;
mod switch;
mod trace;
mod types;
mod uop;

pub use crate::core::Machine;
pub use calendar::{Calendar, CalendarEvent, CalendarStats, KindStats};
pub use config::{
    CacheConfig, ConfigError, MachineConfig, PipelineConfig, PredictorConfig, PredictorKind,
    SoeConfig, TlbConfig,
};
pub use error::SimError;
pub use obs::{EventKind, SharedTracer, Trace, TraceConfig, TraceEvent, Tracer};
pub use stats::{MachineStats, ThreadStats};
pub use switch::{NeverSwitch, SwitchDecision, SwitchOnEvent, SwitchPolicy, SwitchReason};
pub use trace::{AluTrace, PatternTrace, TraceSource};
pub use types::{Addr, Cycle, InstrIndex, ThreadId};
pub use uop::{Uop, UopKind};
