//! A direct-mapped branch target buffer.

use crate::types::Addr;

/// Direct-mapped, tagged branch target buffer.
///
/// A taken branch whose target is absent from the BTB costs a one-cycle
/// fetch bubble even when its direction is predicted correctly.
///
/// # Examples
///
/// ```
/// use soe_sim::frontend::Btb;
///
/// let mut b = Btb::new(64);
/// assert_eq!(b.lookup(0x100), None);
/// b.update(0x100, 0x4000);
/// assert_eq!(b.lookup(0x100), Some(0x4000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(Addr, Addr)>>, // (branch pc, target)
    mask: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "BTB entry count must be a power of two"
        );
        Self {
            entries: vec![None; entries],
            mask: (entries - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Looks up the predicted target of the branch at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        // soe-lint: allow(slice-index): index() masks with len-1 (power-of-two table)
        let e = self.entries[self.index(pc)];
        match e {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                Some(target)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or updates the target of the branch at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        // soe-lint: allow(slice-index): index() masks with len-1 (power-of-two table)
        self.entries[idx] = Some((pc, target));
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliasing_entries_replace() {
        let mut b = Btb::new(4);
        b.update(0x0, 0x100);
        b.update(0x10, 0x200); // same index ((0x10>>2)&3 == 0)
        assert_eq!(b.lookup(0x0), None, "evicted by aliasing branch");
        assert_eq!(b.lookup(0x10), Some(0x200));
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut b = Btb::new(4);
        b.lookup(0x4);
        b.update(0x4, 0x44);
        b.lookup(0x4);
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        Btb::new(3);
    }
}
