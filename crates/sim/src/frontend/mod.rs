//! The in-order front end: branch prediction, BTB and the fetch unit.

mod btb;
mod fetch;
mod predictor;
mod ras;

pub use btb::Btb;
pub use fetch::{FetchEntry, FetchUnit};
pub use predictor::{Bimodal, DirectionPredictor, Gshare, PredictorStats, Tournament};
pub use ras::Ras;
