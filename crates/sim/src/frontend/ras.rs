//! The return address stack: return-target prediction for call/return
//! pairs.

use crate::types::Addr;

/// A fixed-depth circular return address stack.
///
/// Calls push their fall-through address; returns pop the predicted
/// target. Overflow silently wraps (overwriting the oldest entry) and
/// underflow predicts nothing — both produce the return mispredicts real
/// RASes exhibit. Like the rest of the front-end prediction state, the
/// RAS is shared between SOE threads and not repaired on thread switches,
/// so deep switch activity corrupts it — one more sharing effect
/// depressing per-thread IPC under SOE.
///
/// # Examples
///
/// ```
/// use soe_sim::frontend::Ras;
///
/// let mut r = Ras::new(4);
/// r.push(0x1004);
/// assert_eq!(r.pop(), Some(0x1004));
/// assert_eq!(r.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    entries: Vec<Addr>,
    top: usize,
    live: usize,
}

impl Ras {
    /// Creates an empty RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS needs at least one entry");
        Self {
            entries: vec![0; depth],
            top: 0,
            live: 0,
        }
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.entries.len();
        // soe-lint: allow(slice-index): top is always reduced modulo len
        self.entries[self.top] = addr;
        self.live = (self.live + 1).min(self.entries.len());
    }

    /// Pops the predicted return target, or `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.live == 0 {
            return None;
        }
        // soe-lint: allow(slice-index): top is always reduced modulo len
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.live -= 1;
        Some(addr)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(8);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut r = Ras::new(2);
        r.push(0x10);
        r.push(0x20);
        r.push(0x30); // overwrites 0x10's slot
        assert_eq!(r.pop(), Some(0x30));
        assert_eq!(r.pop(), Some(0x20));
        // The third pop returns the stale wrapped entry or nothing; with
        // live tracking it is empty.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn underflow_predicts_nothing() {
        let mut r = Ras::new(4);
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn len_saturates_at_depth() {
        let mut r = Ras::new(2);
        for a in 0..5u64 {
            r.push(a);
        }
        assert_eq!(r.len(), 2);
    }
}
