//! A gshare direction predictor with 2-bit saturating counters.

use serde::{Deserialize, Serialize};

use crate::config::PredictorConfig;
use crate::types::Addr;

/// Direction-prediction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predicted branches.
    pub predictions: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
}

impl PredictorStats {
    /// Misprediction ratio; `0.0` with no predictions.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// gshare: a pattern history table of 2-bit saturating counters indexed by
/// `pc XOR global-history`.
///
/// The predictor state is shared between SOE threads and is *not* flushed
/// on thread switches (Section 4.1) — threads perturb each other's history
/// and counters, one of the resource-sharing effects the paper notes
/// lowers per-thread performance below true single-thread runs.
///
/// # Examples
///
/// ```
/// use soe_sim::config::PredictorConfig;
/// use soe_sim::frontend::Gshare;
///
/// let cfg = PredictorConfig {
///     history_bits: 8, pht_bits: 10, btb_entries: 64, mispredict_penalty: 14,
///     kind: Default::default(),
/// };
/// let mut p = Gshare::new(cfg);
/// // Once the history register saturates at all-taken, the same counter
/// // is trained every time and the branch is learned.
/// for _ in 0..32 { p.train(0x40, true); }
/// assert!(p.predict(0x40)); // learned always-taken
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    history: u64,
    history_mask: u64,
    pht: Vec<u8>,
    pht_mask: u64,
    stats: PredictorStats,
}

impl Gshare {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `pht_bits` is zero or greater than 28.
    pub fn new(cfg: PredictorConfig) -> Self {
        assert!(
            cfg.pht_bits > 0 && cfg.pht_bits <= 28,
            "PHT size must be reasonable"
        );
        Self {
            history: 0,
            history_mask: (1u64 << cfg.history_bits.min(63)) - 1,
            pht: vec![1; 1usize << cfg.pht_bits],
            pht_mask: (1u64 << cfg.pht_bits) - 1,
            stats: PredictorStats::default(),
        }
    }

    fn index(&self, pc: Addr) -> usize {
        (((pc >> 2) ^ self.history) & self.pht_mask) as usize
    }

    /// Predicted direction for the branch at `pc` under the current
    /// history, without updating any state.
    pub fn predict(&self, pc: Addr) -> bool {
        // soe-lint: allow(slice-index): index() masks with pht_mask = len-1 (power-of-two table)
        self.pht[self.index(pc)] >= 2
    }

    /// Trains the counter and shifts the history with the actual outcome,
    /// without recording a prediction.
    pub fn train(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        // soe-lint: allow(slice-index): index() masks with pht_mask = len-1 (power-of-two table)
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }

    /// Predicts, records the prediction against the actual outcome, then
    /// trains — the trace-driven fetch path (outcome known at fetch,
    /// immediate update).
    pub fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool {
        let prediction = self.predict(pc);
        self.stats.predictions += 1;
        if prediction != taken {
            self.stats.mispredictions += 1;
        }
        self.train(pc, taken);
        prediction
    }

    /// Accuracy counters.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictorConfig {
        PredictorConfig {
            history_bits: 8,
            pht_bits: 12,
            btb_entries: 64,
            mispredict_penalty: 14,
            kind: Default::default(),
        }
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = Gshare::new(cfg());
        for _ in 0..16 {
            p.predict_and_train(0x100, true);
        }
        let before = p.stats().mispredictions;
        for _ in 0..100 {
            p.predict_and_train(0x100, true);
        }
        assert_eq!(
            p.stats().mispredictions,
            before,
            "no more misses once learned"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Gshare::new(cfg());
        let mut taken = false;
        for _ in 0..64 {
            p.predict_and_train(0x200, taken);
            taken = !taken;
        }
        // After warmup the history disambiguates the alternation.
        let before = p.stats().mispredictions;
        for _ in 0..64 {
            p.predict_and_train(0x200, taken);
            taken = !taken;
        }
        let new_misses = p.stats().mispredictions - before;
        assert!(
            new_misses <= 4,
            "history should capture alternation: {new_misses}"
        );
    }

    #[test]
    fn random_branch_mispredicts_about_half() {
        let mut p = Gshare::new(cfg());
        // A deterministic pseudo-random sequence.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut mispredicts = 0;
        let n = 4096;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if p.predict_and_train(0x300, taken) != taken {
                mispredicts += 1;
            }
        }
        let rate = mispredicts as f64 / n as f64;
        assert!(rate > 0.3 && rate < 0.7, "rate {rate}");
    }

    #[test]
    fn stats_rate() {
        let mut p = Gshare::new(cfg());
        p.predict_and_train(0, true);
        assert!(p.stats().mispredict_rate() > 0.0);
    }
}

/// A branch direction predictor, as seen by the fetch unit.
///
/// [`Gshare`] is the default; [`Bimodal`] and [`Tournament`] exist for
/// predictor ablations (`PredictorKind`). All are trained trace-driven
/// (outcome known at fetch, immediate update) and shared between SOE
/// threads without flushing.
pub trait DirectionPredictor {
    /// Predicts the branch at `pc`, records accuracy against the actual
    /// outcome and trains.
    fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool;

    /// Accuracy counters.
    fn stats(&self) -> PredictorStats;
}

impl DirectionPredictor for Gshare {
    fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool {
        Gshare::predict_and_train(self, pc, taken)
    }
    fn stats(&self) -> PredictorStats {
        Gshare::stats(self)
    }
}

/// A history-less bimodal predictor: one 2-bit counter per PC hash.
#[derive(Debug, Clone)]
pub struct Bimodal {
    pht: Vec<u8>,
    mask: u64,
    stats: PredictorStats,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^pht_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `pht_bits` is zero or greater than 28.
    pub fn new(pht_bits: u32) -> Self {
        assert!(
            pht_bits > 0 && pht_bits <= 28,
            "PHT size must be reasonable"
        );
        Self {
            pht: vec![1; 1usize << pht_bits],
            mask: (1u64 << pht_bits) - 1,
            stats: PredictorStats::default(),
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Prediction without updating state.
    pub fn predict(&self, pc: Addr) -> bool {
        // soe-lint: allow(slice-index): index() masks with len-1 (power-of-two table)
        self.pht[self.index(pc)] >= 2
    }

    fn train(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        // soe-lint: allow(slice-index): index() masks with len-1 (power-of-two table)
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool {
        let prediction = self.predict(pc);
        self.stats.predictions += 1;
        if prediction != taken {
            self.stats.mispredictions += 1;
        }
        self.train(pc, taken);
        prediction
    }
    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// An Alpha-21264-style tournament predictor: gshare and bimodal race,
/// and a per-PC 2-bit chooser learns which to trust.
#[derive(Debug, Clone)]
pub struct Tournament {
    gshare: Gshare,
    bimodal: Bimodal,
    chooser: Vec<u8>, // 0..=3: low = trust bimodal, high = trust gshare
    mask: u64,
    stats: PredictorStats,
}

impl Tournament {
    /// Creates a tournament predictor sized by the same configuration as
    /// its gshare component.
    pub fn new(cfg: PredictorConfig) -> Self {
        Self {
            gshare: Gshare::new(cfg),
            bimodal: Bimodal::new(cfg.pht_bits),
            chooser: vec![2; 1usize << cfg.pht_bits],
            mask: (1u64 << cfg.pht_bits) - 1,
            stats: PredictorStats::default(),
        }
    }
}

impl DirectionPredictor for Tournament {
    fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        let idx = ((pc >> 2) & self.mask) as usize;
        // soe-lint: allow(slice-index): idx masked with len-1 (power-of-two chooser table)
        let prediction = if self.chooser[idx] >= 2 { g } else { b };
        self.stats.predictions += 1;
        if prediction != taken {
            self.stats.mispredictions += 1;
        }
        // Chooser trains toward whichever component was right (only when
        // they disagree).
        if g != b {
            // soe-lint: allow(slice-index): idx masked with len-1 (power-of-two chooser table)
            let c = &mut self.chooser[idx];
            if g == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        self.gshare.train(pc, taken);
        self.bimodal.train(pc, taken);
        prediction
    }
    fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tournament_tests {
    use super::*;

    fn cfg() -> PredictorConfig {
        PredictorConfig {
            history_bits: 10,
            pht_bits: 12,
            btb_entries: 64,
            mispredict_penalty: 14,
            kind: Default::default(),
        }
    }

    #[test]
    fn bimodal_learns_biased_branches_immediately() {
        let mut p = Bimodal::new(12);
        p.predict_and_train(0x40, true);
        p.predict_and_train(0x40, true);
        assert!(p.predict(0x40));
        assert_eq!(p.stats().predictions, 2);
    }

    #[test]
    fn tournament_beats_or_matches_components_on_mixed_workload() {
        // A mix: some always-taken branches (bimodal-friendly) and one
        // alternating branch (history-friendly).
        let run = |p: &mut dyn DirectionPredictor| {
            let mut flip = false;
            for i in 0..20_000u64 {
                let pc = 0x100 + (i % 8) * 4;
                if i % 8 == 7 {
                    flip = !flip;
                    p.predict_and_train(pc, flip);
                } else {
                    p.predict_and_train(pc, true);
                }
            }
            p.stats().mispredict_rate()
        };
        let mut g = Gshare::new(cfg());
        let mut b = Bimodal::new(12);
        let mut t = Tournament::new(cfg());
        let (rg, rb, rt) = (run(&mut g), run(&mut b), run(&mut t));
        assert!(
            rt <= rg.min(rb) + 0.02,
            "tournament {rt:.4} vs gshare {rg:.4}, bimodal {rb:.4}"
        );
    }

    #[test]
    fn bimodal_cannot_learn_alternation_but_gshare_can() {
        let mut b = Bimodal::new(12);
        let mut g = Gshare::new(cfg());
        let mut flip = false;
        for _ in 0..4_096 {
            flip = !flip;
            b.predict_and_train(0x80, flip);
            g.predict_and_train(0x80, flip);
        }
        assert!(
            b.stats().mispredict_rate() > 0.4,
            "{}",
            b.stats().mispredict_rate()
        );
        assert!(
            g.stats().mispredict_rate() < 0.1,
            "{}",
            g.stats().mispredict_rate()
        );
    }
}
