//! The in-order front end: fetch, branch prediction and the fetch/decode
//! pipeline buffer.

use std::collections::VecDeque;

use crate::config::MachineConfig;
use crate::frontend::{Btb, DirectionPredictor, Ras};
use crate::mem::Hierarchy;
use crate::trace::TraceSource;
use crate::types::{Addr, Cycle, InstrIndex};
use crate::uop::Uop;

/// A fetched micro-op travelling down the front-end pipeline.
#[derive(Debug, Clone, Copy)]
pub struct FetchEntry {
    /// Dynamic stream position.
    pub index: InstrIndex,
    /// The micro-op.
    pub uop: Uop,
    /// Cycle at which the entry reaches the rename stage.
    pub ready_at: Cycle,
    /// Whether this branch was mispredicted at fetch (resolves at
    /// execute, restarting fetch after the redirect penalty).
    pub mispredicted: bool,
}

/// The fetch unit: walks the trace in order, consults the iTLB/L1I, the
/// gshare predictor and the BTB, and fills a depth-modelled pipeline
/// buffer that the rename stage drains.
///
/// Thread switches call [`FetchUnit::restart`], which squashes the buffer
/// and repoints the stream — the front-end analogue of the paper's
/// pipeline drain.
#[derive(Debug)]
pub struct FetchUnit {
    next_index: InstrIndex,
    buffer: VecDeque<FetchEntry>,
    buffer_cap: usize,
    resume_at: Cycle,
    redirect_pending: Option<InstrIndex>,
    last_line: Option<Addr>,
    width: usize,
    depth: Cycle,
    mispredict_penalty: Cycle,
    line_mask: Addr,
    ras: Ras,
}

impl FetchUnit {
    /// Creates a fetch unit for a machine with configuration `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let depth = cfg.pipeline.frontend_depth;
        let width = cfg.pipeline.fetch_width;
        Self {
            next_index: 0,
            buffer: VecDeque::new(),
            buffer_cap: (depth as usize + 2) * width,
            resume_at: 0,
            redirect_pending: None,
            last_line: None,
            width,
            depth,
            mispredict_penalty: cfg.predictor.mispredict_penalty,
            line_mask: !(cfg.l1i.line_bytes as Addr - 1),
            ras: Ras::new(16),
        }
    }

    /// Squashes all in-flight fetches and restarts the stream at
    /// `start_index`, with fetch resuming at cycle `resume_at` (the end of
    /// the switch drain).
    pub fn restart(&mut self, start_index: InstrIndex, resume_at: Cycle) {
        self.next_index = start_index;
        self.buffer.clear();
        self.redirect_pending = None;
        self.last_line = None;
        self.resume_at = resume_at;
    }

    /// Notifies the front end that the branch at stream position `index`
    /// has executed; if fetch was stalled on its redirect, fetch resumes
    /// after the mispredict penalty.
    pub fn branch_executed(&mut self, index: InstrIndex, now: Cycle) {
        if self.redirect_pending == Some(index) {
            self.redirect_pending = None;
            self.resume_at = self.resume_at.max(now + self.mispredict_penalty);
            self.last_line = None;
        }
    }

    /// Whether fetch is stalled waiting for a mispredicted branch to
    /// resolve.
    pub fn awaiting_redirect(&self) -> Option<InstrIndex> {
        self.redirect_pending
    }

    /// Earliest cycle at which fetch could make progress again (for the
    /// quiescent fast-forward); `None` when blocked on a branch
    /// resolution or a full buffer.
    pub fn next_activity(&self) -> Option<Cycle> {
        if self.redirect_pending.is_some() || self.buffer.len() >= self.buffer_cap {
            None
        } else {
            Some(self.resume_at)
        }
    }

    /// Runs one fetch cycle: appends up to `fetch_width` micro-ops to the
    /// pipeline buffer. Returns the number fetched.
    pub fn tick(
        &mut self,
        now: Cycle,
        trace: &dyn TraceSource,
        hier: &mut Hierarchy,
        predictor: &mut dyn DirectionPredictor,
        btb: &mut Btb,
    ) -> usize {
        if now < self.resume_at || self.redirect_pending.is_some() {
            return 0;
        }
        let mut fetched = 0;
        while fetched < self.width && self.buffer.len() < self.buffer_cap {
            let uop = trace.uop_at(self.next_index);
            let line = uop.pc & self.line_mask;
            if self.last_line != Some(line) {
                let t = hier.translate_instr(now, uop.pc);
                if t.complete_at > now {
                    // iTLB walk in progress: stall, retry the same uop.
                    self.resume_at = t.complete_at;
                    break;
                }
                let r = hier.access_ifetch(now, uop.pc);
                self.last_line = Some(line);
                if r.complete_at > now + 1 {
                    // I-cache miss: stall until the line arrives.
                    self.resume_at = r.complete_at;
                    break;
                }
            }
            let mut entry = FetchEntry {
                index: self.next_index,
                uop,
                ready_at: now + self.depth,
                mispredicted: false,
            };
            self.next_index += 1;
            fetched += 1;
            match uop.kind {
                crate::uop::UopKind::Call { target } => {
                    // Direct call: target known at decode, no direction to
                    // predict; push the fall-through and redirect fetch.
                    self.ras.push(uop.pc + 4);
                    btb.update(uop.pc, target);
                    self.last_line = None;
                    self.buffer.push_back(entry);
                    break;
                }
                crate::uop::UopKind::Return { target } => {
                    let predicted = self.ras.pop();
                    self.last_line = None;
                    if predicted != Some(target) {
                        // RAS mispredict: resolved at execute like a
                        // branch mispredict.
                        entry.mispredicted = true;
                        self.redirect_pending = Some(entry.index);
                        self.buffer.push_back(entry);
                        break;
                    }
                    self.buffer.push_back(entry);
                    break;
                }
                _ => {}
            }
            if let crate::uop::UopKind::Branch { taken, target } = uop.kind {
                let predicted = predictor.predict_and_train(uop.pc, taken);
                let btb_target = btb.lookup(uop.pc);
                if taken {
                    btb.update(uop.pc, target);
                }
                if predicted != taken {
                    entry.mispredicted = true;
                    self.redirect_pending = Some(entry.index);
                    self.buffer.push_back(entry);
                    break;
                }
                if taken {
                    // Correctly predicted taken: fetch redirects to the
                    // target line; a BTB miss costs one extra bubble.
                    self.last_line = None;
                    if btb_target != Some(target) {
                        self.resume_at = now + 2;
                    }
                    self.buffer.push_back(entry);
                    break;
                }
            }
            self.buffer.push_back(entry);
        }
        fetched
    }

    /// Cycle at which the oldest buffered micro-op reaches rename, if the
    /// buffer is non-empty.
    pub fn front_ready_at(&self) -> Option<Cycle> {
        self.buffer.front().map(|e| e.ready_at)
    }

    /// Pops the oldest buffered micro-op if it has reached the rename
    /// stage by cycle `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<FetchEntry> {
        if self.buffer.front().is_some_and(|e| e.ready_at <= now) {
            self.buffer.pop_front()
        } else {
            None
        }
    }

    /// Peeks at the oldest buffered micro-op without consuming it.
    pub fn peek_ready(&self, now: Cycle) -> Option<&FetchEntry> {
        self.buffer.front().filter(|e| e.ready_at <= now)
    }

    /// Number of buffered micro-ops.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The next stream position to be fetched.
    pub fn next_index(&self) -> InstrIndex {
        self.next_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::Gshare;
    use crate::trace::AluTrace;
    use crate::uop::{Uop, UopKind};
    use crate::PatternTrace;

    fn setup() -> (FetchUnit, Hierarchy, Gshare, Btb, MachineConfig) {
        let cfg = MachineConfig::test_config();
        (
            FetchUnit::new(&cfg),
            Hierarchy::new(&cfg),
            Gshare::new(cfg.predictor),
            Btb::new(cfg.predictor.btb_entries),
            cfg,
        )
    }

    /// Ticks through cold-start stalls (iTLB walk, I-cache miss) until a
    /// fetch cycle makes progress; returns (cycle, uops fetched).
    fn tick_until_progress(
        f: &mut FetchUnit,
        t: &dyn TraceSource,
        h: &mut Hierarchy,
        p: &mut Gshare,
        b: &mut Btb,
    ) -> (Cycle, usize) {
        let mut now = 0;
        for _ in 0..10 {
            let n = f.tick(now, t, h, p, b);
            if n > 0 {
                return (now, n);
            }
            now = f.next_activity().expect("fetch must have a resume point");
        }
        panic!("fetch made no progress after repeated stalls");
    }

    #[test]
    fn first_fetch_stalls_on_cold_icache() {
        let (mut f, mut h, mut p, mut b, _) = setup();
        let t = AluTrace::new();
        let n = f.tick(0, &t, &mut h, &mut p, &mut b);
        assert_eq!(n, 0, "cold I-cache miss blocks the first fetch");
        assert!(f.next_activity().unwrap() > 0);
    }

    #[test]
    fn warm_fetch_delivers_full_width() {
        let (mut f, mut h, mut p, mut b, cfg) = setup();
        let t = AluTrace::new();
        let (_, n) = tick_until_progress(&mut f, &t, &mut h, &mut p, &mut b);
        assert_eq!(n, cfg.pipeline.fetch_width);
    }

    #[test]
    fn entries_become_ready_after_depth() {
        let (mut f, mut h, mut p, mut b, cfg) = setup();
        let t = AluTrace::new();
        let (at, _) = tick_until_progress(&mut f, &t, &mut h, &mut p, &mut b);
        assert!(f.pop_ready(at).is_none(), "not ready before depth");
        let e = f
            .pop_ready(at + cfg.pipeline.frontend_depth)
            .expect("ready after depth");
        assert_eq!(e.index, 0);
    }

    #[test]
    fn mispredicted_branch_stalls_until_resolved() {
        let (mut f, mut h, mut p, mut b, _) = setup();
        // An always-taken branch the cold predictor gets wrong.
        let t = PatternTrace::new(
            "br",
            vec![Uop::new(
                UopKind::Branch {
                    taken: true,
                    target: 0x40,
                },
                0x40,
            )],
        );
        let (at, _) = tick_until_progress(&mut f, &t, &mut h, &mut p, &mut b);
        assert_eq!(f.awaiting_redirect(), Some(0));
        assert_eq!(
            f.tick(at + 1, &t, &mut h, &mut p, &mut b),
            0,
            "stalled on redirect"
        );
        f.branch_executed(0, at + 5);
        assert!(f.awaiting_redirect().is_none());
        assert!(f.next_activity().unwrap() >= at + 5 + 14);
    }

    #[test]
    fn restart_squashes_buffer() {
        let (mut f, mut h, mut p, mut b, _) = setup();
        let t = AluTrace::new();
        let (at, _) = tick_until_progress(&mut f, &t, &mut h, &mut p, &mut b);
        assert!(f.buffered() > 0);
        f.restart(100, at + 6);
        assert_eq!(f.buffered(), 0);
        assert_eq!(f.next_index(), 100);
        assert_eq!(f.tick(at, &t, &mut h, &mut p, &mut b), 0, "drain stall");
    }
}
