//! Structured simulator failures.
//!
//! The experiment supervisor (in `soe-core`) needs machine failures as
//! *values* it can retry, quarantine and report — not panics that take a
//! whole worker (or the whole evening's matrix) down with them. The
//! checked entry points ([`Machine::try_run_cycles`]) return these;
//! the legacy panicking entry points format them into their panic
//! message, so nothing is lost for callers that prefer to crash.
//!
//! [`Machine::try_run_cycles`]: crate::Machine::try_run_cycles

use crate::types::{Cycle, InstrIndex, ThreadId};

/// A structured simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine kept ticking but retired no instruction on any thread
    /// for a whole forward-progress window — the cycle-level analogue of
    /// a hung job. A correctly configured run never does this: the
    /// window is chosen far above the longest legitimate stall (memory
    /// latency plus TLB walks plus bus queueing).
    Stalled {
        /// Cycle at which the window expired.
        cycle: Cycle,
        /// The forward-progress window that was exceeded.
        window: Cycle,
        /// Thread occupying the core when progress stopped.
        thread: ThreadId,
        /// Total instructions (all threads) committed when progress
        /// stopped.
        retired: InstrIndex,
    },
    /// No pipeline activity *and* no pending event: the machine can
    /// provably never make progress again (a simulator bug, by
    /// construction).
    Wedged {
        /// Cycle at which the machine wedged.
        cycle: Cycle,
        /// Thread occupying the core.
        thread: ThreadId,
        /// Occupied re-order-buffer entries.
        rob_len: usize,
    },
    /// The machine configuration failed validation before the run
    /// started (see [`MachineConfig::check`](crate::MachineConfig::check)).
    InvalidConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Stalled {
                cycle,
                window,
                thread,
                retired,
            } => write!(
                f,
                "simulation stalled: no instruction retired for {window} cycles \
                 (at cycle {cycle}, thread {thread}, {retired} total instructions committed)"
            ),
            Self::Wedged {
                cycle,
                thread,
                rob_len,
            } => write!(
                f,
                "machine wedged at cycle {cycle}: no pipeline activity and no pending event \
                 (thread {thread}, ROB {rob_len} entries)"
            ),
            Self::InvalidConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
