//! Machine configuration — the simulated processor's Table 3 parameters.

use serde::{Deserialize, Serialize};

use crate::types::Cycle;

/// A descriptive configuration-validation failure.
///
/// Produced by the non-panicking [`CacheConfig::check`] and
/// [`MachineConfig::check`]; the message names the offending structure and
/// parameter so a bad config is diagnosed before it panics deep in the
/// pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(ConfigError(format!($($msg)+)));
        }
    };
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
    /// Access latency in cycles (hit latency).
    pub hit_latency: Cycle,
    /// Number of miss status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Validates the geometry, naming the cache (`"L1D"`, ...) in any error.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if sets, associativity or line size are not
    /// powers of two, or any field is zero.
    pub fn check(&self, name: &str) -> Result<(), ConfigError> {
        ensure!(
            self.sets > 0 && self.sets.is_power_of_two(),
            "{name}: sets must be a power of two (got {})",
            self.sets
        );
        ensure!(
            self.line_bytes > 0 && self.line_bytes.is_power_of_two(),
            "{name}: line size must be a power of two (got {})",
            self.line_bytes
        );
        ensure!(
            self.ways > 0,
            "{name}: associativity must be positive (got 0)"
        );
        ensure!(
            self.ways.is_power_of_two(),
            "{name}: associativity must be a power of two (got {})",
            self.ways
        );
        ensure!(self.mshrs > 0, "{name}: need at least one MSHR (got 0)");
        ensure!(
            self.hit_latency > 0,
            "{name}: hit latency must be at least one cycle (got 0)"
        );
        Ok(())
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics with the [`CacheConfig::check`] message on any invalid
    /// parameter.
    pub fn validate(&self) {
        if let Err(e) = self.check("cache") {
            // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use check()
            panic!("{e}");
        }
    }
}

/// Geometry and timing of one TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size as a power of two (e.g. 12 for 4 KiB pages).
    pub page_bits: u32,
    /// Base page-walk latency in cycles, on top of the memory accesses the
    /// walk performs.
    pub walk_latency: Cycle,
}

/// Direction predictor organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PredictorKind {
    /// gshare (PC XOR global history) — the default.
    #[default]
    Gshare,
    /// History-less per-PC 2-bit counters.
    Bimodal,
    /// Alpha-21264-style gshare/bimodal with a chooser.
    Tournament,
}

/// Branch prediction structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Global history length in bits (gshare).
    pub history_bits: u32,
    /// log2 of the pattern history table size.
    pub pht_bits: u32,
    /// Number of BTB entries (direct mapped).
    pub btb_entries: usize,
    /// Front-end redirect penalty on a mispredicted branch, in cycles
    /// (applied from branch resolution to fetch resume).
    pub mispredict_penalty: Cycle,
    /// Direction predictor organization.
    #[serde(default)]
    pub kind: PredictorKind,
}

/// Front-end / back-end widths and structure sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Micro-ops fetched per cycle (within one I-cache line).
    pub fetch_width: usize,
    /// Micro-ops decoded and renamed per cycle.
    pub rename_width: usize,
    /// Micro-ops issued to functional units per cycle.
    pub issue_width: usize,
    /// Micro-ops retired per cycle.
    pub retire_width: usize,
    /// Re-order buffer entries.
    pub rob_size: usize,
    /// Reservation station (scheduler) entries.
    pub rs_size: usize,
    /// Load buffer entries.
    pub load_buffer: usize,
    /// Store buffer entries.
    pub store_buffer: usize,
    /// Cycles from fetch to rename (front-end depth); determines the
    /// pipeline refill part of the thread-switch latency.
    pub frontend_depth: Cycle,
    /// Simple ALU count.
    pub alu_units: usize,
    /// Multiplier count.
    pub mul_units: usize,
    /// Divider count (unpipelined).
    pub div_units: usize,
    /// Load ports (AGU + D-cache read ports).
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// Multiply latency in cycles.
    pub mul_latency: Cycle,
    /// Divide latency in cycles.
    pub div_latency: Cycle,
}

/// Switch-on-Event machinery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoeConfig {
    /// Cycles to drain the RS/ROB/load buffers on a thread switch (the
    /// paper simulates a 6-cycle drain).
    pub drain_latency: Cycle,
    /// Also flag loads that miss the L1 but hit the L2 as switch events
    /// (Section 6's proposed extension: "L1 misses ... can cause a thread
    /// switch to hide L1 miss latency"). Off by default — the paper's
    /// evaluation switches on last-level misses only.
    pub switch_on_l1_miss: bool,
}

/// The complete simulated machine configuration.
///
/// [`MachineConfig::default`] reproduces the paper's Table 3 parameters: a
/// P6-derived out-of-order core with 32 KiB L1s, a 2 MiB unified L2, a
/// pipelined bus and a constant 300-cycle memory.
///
/// # Examples
///
/// ```
/// use soe_sim::MachineConfig;
///
/// let c = MachineConfig::default();
/// assert_eq!(c.mem_latency, 300);
/// assert_eq!(c.l2.capacity(), 2 * 1024 * 1024);
/// c.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Pipeline widths and structures.
    pub pipeline: PipelineConfig,
    /// Branch prediction.
    pub predictor: PredictorConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache (the last level; its misses are the SOE
    /// switch events).
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Cycles between back-to-back bus transfers (pipelined bus
    /// occupancy per request).
    pub bus_cycles_per_transfer: Cycle,
    /// Constant memory access latency in cycles (the paper uses 300,
    /// i.e. 75 ns at 4 GHz).
    pub mem_latency: Cycle,
    /// Next-line stream prefetcher degree at the L2: on a demand miss to
    /// line `L`, lines `L+1 .. L+degree` are fetched too. `0` disables
    /// prefetching (the paper's machine; prefetching shrinks the very
    /// stalls SOE exists to hide, so it is studied as an ablation).
    pub l2_prefetch_degree: usize,
    /// Cycles between retired-store commits from the store buffer to the
    /// cache hierarchy. `0` (default) commits stores instantly at
    /// retirement; a positive interval models a draining store buffer
    /// whose occupancy can stall retirement when full.
    #[serde(default)]
    pub store_drain_interval: Cycle,
    /// Thread-switch machinery.
    pub soe: SoeConfig,
    /// Skip idle cycles when the whole machine is provably quiescent
    /// (pure simulation speedup; results are identical). Scheduled
    /// switch-policy decision points (Δ-window recalculations,
    /// cycle-quota expiries) are first-class calendar events, so jumps
    /// always stop at them: a fast-forwarded run takes every decision at
    /// the exact cycle a tick-by-tick run would.
    pub fast_forward: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig {
                fetch_width: 4,
                rename_width: 4,
                issue_width: 5,
                retire_width: 4,
                rob_size: 128,
                rs_size: 48,
                load_buffer: 48,
                store_buffer: 32,
                frontend_depth: 12,
                alu_units: 3,
                mul_units: 1,
                div_units: 1,
                load_ports: 2,
                store_ports: 1,
                mul_latency: 3,
                div_latency: 20,
            },
            predictor: PredictorConfig {
                history_bits: 12,
                pht_bits: 14,
                btb_entries: 2048,
                mispredict_penalty: 14,
                kind: PredictorKind::Gshare,
            },
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                hit_latency: 1,
                mshrs: 4,
            },
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                hit_latency: 3,
                mshrs: 16,
            },
            l2: CacheConfig {
                sets: 2048,
                ways: 16,
                line_bytes: 64,
                hit_latency: 14,
                mshrs: 16,
            },
            itlb: TlbConfig {
                entries: 64,
                page_bits: 12,
                walk_latency: 20,
            },
            dtlb: TlbConfig {
                entries: 64,
                page_bits: 12,
                walk_latency: 20,
            },
            bus_cycles_per_transfer: 4,
            mem_latency: 300,
            l2_prefetch_degree: 0,
            store_drain_interval: 0,
            soe: SoeConfig {
                drain_latency: 6,
                switch_on_l1_miss: false,
            },
            fast_forward: true,
        }
    }
}

impl MachineConfig {
    /// Validates every sub-structure, returning a descriptive error instead
    /// of panicking deep in the pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on any inconsistent parameter (zero widths,
    /// non-power-of-two cache geometry, retire width of zero, ...).
    pub fn check(&self) -> Result<(), ConfigError> {
        let p = &self.pipeline;
        ensure!(p.fetch_width > 0, "fetch width must be positive");
        ensure!(p.rename_width > 0, "rename width must be positive");
        ensure!(p.issue_width > 0, "issue width must be positive");
        ensure!(p.retire_width > 0, "retire width must be positive");
        ensure!(p.rob_size > 0, "ROB must be non-empty");
        ensure!(p.rs_size > 0, "RS must be non-empty");
        ensure!(
            p.load_buffer > 0 && p.store_buffer > 0,
            "LSQ must be non-empty"
        );
        ensure!(
            p.alu_units > 0 && p.load_ports > 0 && p.store_ports > 0,
            "need at least one ALU, load port and store port"
        );
        self.l1i.check("L1I")?;
        self.l1d.check("L1D")?;
        self.l2.check("L2")?;
        ensure!(
            self.itlb.entries > 0 && self.dtlb.entries > 0,
            "TLBs need entries"
        );
        ensure!(self.mem_latency > 0, "memory latency must be positive");
        ensure!(
            self.bus_cycles_per_transfer > 0,
            "bus occupancy must be positive"
        );
        let pr = &self.predictor;
        ensure!(
            pr.history_bits <= 32,
            "history length must fit the 32-bit global history register (got {})",
            pr.history_bits
        );
        ensure!(
            pr.pht_bits > 0 && pr.pht_bits <= 30,
            "PHT size must be 2^1..2^30 entries (got 2^{})",
            pr.pht_bits
        );
        ensure!(
            pr.btb_entries > 0 && pr.btb_entries.is_power_of_two(),
            "BTB entries must be a power of two (got {})",
            pr.btb_entries
        );
        ensure!(
            pr.mispredict_penalty > 0,
            "mispredict penalty must be at least one cycle (got 0)"
        );
        // No invariant to enforce: any prefetch degree (0 disables), any
        // drain interval (0 commits instantly), any drain latency (0
        // models a free switch), and both fast-forward settings are
        // legal machines.
        let _ = (
            pr.kind,
            self.l2_prefetch_degree,
            self.store_drain_interval,
            self.soe.drain_latency,
            self.soe.switch_on_l1_miss,
            self.fast_forward,
        );
        Ok(())
    }

    /// Validates every sub-structure.
    ///
    /// # Panics
    ///
    /// Panics with the [`MachineConfig::check`] message on any inconsistent
    /// parameter.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use check()
            panic!("{e}");
        }
    }

    /// A smaller, faster machine for unit tests: same structure, reduced
    /// cache sizes so that misses are easy to provoke.
    #[allow(clippy::field_reassign_with_default)]
    pub fn test_config() -> Self {
        let mut c = Self::default();
        c.l1i = CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
        };
        c.l1d = CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 64,
            hit_latency: 3,
            mshrs: 8,
        };
        c.l2 = CacheConfig {
            sets: 64,
            ways: 4,
            line_bytes: 64,
            hit_latency: 10,
            mshrs: 8,
        };
        c.mem_latency = 100;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MachineConfig::default().validate();
    }

    #[test]
    fn test_config_is_valid_and_small() {
        let c = MachineConfig::test_config();
        c.validate();
        assert!(c.l2.capacity() < MachineConfig::default().l2.capacity());
    }

    #[test]
    fn capacities_match_table3() {
        let c = MachineConfig::default();
        assert_eq!(c.l1i.capacity(), 32 * 1024);
        assert_eq!(c.l1d.capacity(), 32 * 1024);
        assert_eq!(c.l2.capacity(), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_geometry_panics() {
        let mut c = MachineConfig::default();
        c.l1d.sets = 63;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "retire width")]
    fn zero_retire_width_panics() {
        let mut c = MachineConfig::default();
        c.pipeline.retire_width = 0;
        c.validate();
    }

    #[test]
    fn check_names_the_offending_cache() {
        let mut c = MachineConfig::default();
        c.l1d.sets = 63;
        let err = c.check().unwrap_err();
        assert!(err.0.contains("L1D"), "got: {err}");
        assert!(err.0.contains("63"), "got: {err}");
    }

    #[test]
    fn non_power_of_two_associativity_is_rejected() {
        let mut c = MachineConfig::default();
        c.l2.ways = 12;
        let err = c.check().unwrap_err();
        assert!(err.0.contains("associativity"), "got: {err}");
        assert!(err.0.contains("12"), "got: {err}");
    }

    #[test]
    fn zero_cache_sets_are_rejected() {
        let mut c = MachineConfig::default();
        c.l1i.sets = 0;
        assert!(c.check().is_err());
    }
}
