//! Fundamental newtypes shared across the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulated clock cycle count.
pub type Cycle = u64;

/// A byte address in the simulated (physical) address space.
pub type Addr = u64;

/// Position of a micro-op in a thread's dynamic instruction stream.
///
/// Traces are pure functions of this index (see
/// [`crate::trace::TraceSource`]), which is what makes squash-and-replay
/// after a thread switch or branch redirect trivially correct.
pub type InstrIndex = u64;

/// Identifier of a hardware thread context (0-based).
///
/// # Examples
///
/// ```
/// use soe_sim::ThreadId;
///
/// let t = ThreadId::new(1);
/// assert_eq!(t.index(), 1);
/// assert_eq!(t.to_string(), "T1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Creates a thread id.
    pub fn new(index: u8) -> Self {
        Self(index)
    }

    /// The 0-based index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u8> for ThreadId {
    fn from(v: u8) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::from(3u8);
        assert_eq!(t.index(), 3);
        assert_eq!(format!("{t}"), "T3");
    }

    #[test]
    fn thread_ids_order() {
        assert!(ThreadId::new(0) < ThreadId::new(1));
    }
}
