//! The global event calendar: the machine's single source of "when can
//! anything happen next".
//!
//! Every wake source in the machine — ROB completions, front-end
//! refills and fetch resumes (which carry cache-fill and bus-grant
//! timestamps, since the hierarchy is timestamp-passing), store-buffer
//! drains, switch drain completions, and scheduled switch-policy
//! decisions — is a [`CalendarEvent`] kind. When the machine quiesces,
//! it schedules the live wake time of each source; `Machine::step` then
//! pops the earliest entry, advances `now` to it, and dispatches — no
//! per-cycle polling of quiescent components.
//!
//! # Ordering and determinism
//!
//! Entries are keyed `(cycle, kind rank, sequence)`: dispatch order is
//! nondecreasing in cycle, and same-cycle ties break first on the fixed
//! [`CalendarEvent`] declaration order, then on insertion sequence —
//! both deterministic, neither influenced by wall-clock time or hash
//! iteration order.
//!
//! # Cancellation
//!
//! Scheduling is *monotone within a kind*: each kind tracks its most
//! recently scheduled cycle and re-scheduling the same `(kind, cycle)`
//! is a no-op, so the heap never accumulates duplicates. Events are
//! never eagerly removed; an entry obsoleted by a state change (a
//! squash, a switch, an earlier completion) is *superseded* — the
//! machine validates each popped entry against live component state and
//! discards stale ones, counting them. Because every quiesce re-schedules
//! all live wake sources before popping, discarding a stale entry can
//! never lose a due event (the `calendar_invariants` proptest pins
//! this).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::Cycle;

/// The kinds of first-class scheduled events. Declaration order is the
/// same-cycle dispatch priority (lowest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum CalendarEvent {
    /// The switch drain completes and the incoming thread takes the
    /// pipeline. While draining this is the *only* valid event.
    DrainDone = 0,
    /// The earliest in-flight ROB entry completes execution (data-cache
    /// fills and MSHR completions surface here: a load's completion
    /// timestamp *is* its fill time).
    RobComplete = 1,
    /// Fetch resumes after an I-cache/iTLB fill or a redirect penalty
    /// (instruction-side cache fills and bus grants surface here).
    FetchResume = 2,
    /// The front-end pipe delivers fetched micro-ops to rename.
    FrontReady = 3,
    /// The store buffer commits its next retired store.
    StoreDrain = 4,
    /// A scheduled switch-policy decision point: a Δ-window
    /// recalculation or a cycle-quota expiry.
    PolicyDecision = 5,
}

/// Number of event kinds (array-table size).
pub const KIND_COUNT: usize = 6;

/// All kinds, in rank order.
pub const ALL_KINDS: [CalendarEvent; KIND_COUNT] = [
    CalendarEvent::DrainDone,
    CalendarEvent::RobComplete,
    CalendarEvent::FetchResume,
    CalendarEvent::FrontReady,
    CalendarEvent::StoreDrain,
    CalendarEvent::PolicyDecision,
];

impl CalendarEvent {
    /// Stable display name (used by `soe-perf --profile`).
    pub fn name(self) -> &'static str {
        match self {
            CalendarEvent::DrainDone => "drain_done",
            CalendarEvent::RobComplete => "rob_complete",
            CalendarEvent::FetchResume => "fetch_resume",
            CalendarEvent::FrontReady => "front_ready",
            CalendarEvent::StoreDrain => "store_drain",
            CalendarEvent::PolicyDecision => "policy_decision",
        }
    }

    fn rank(self) -> u8 {
        self as u8
    }

    fn from_rank(r: u8) -> Self {
        // soe-lint: allow(slice-index): rank is produced by `rank()` on a fieldless enum of KIND_COUNT variants
        ALL_KINDS[r as usize]
    }
}

/// Per-kind scheduling/dispatch counters, surfaced by
/// `Machine::calendar_stats` for `soe-perf --profile`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Entries pushed onto the heap (after dedup).
    pub scheduled: u64,
    /// Entries popped and dispatched (the machine advanced to them).
    pub dispatched: u64,
    /// Entries popped but discarded because live state had moved on
    /// (lazy cancellation).
    pub superseded: u64,
}

/// Aggregate calendar counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Per-kind counters, indexed by [`CalendarEvent`] rank.
    pub kinds: [KindStats; KIND_COUNT],
}

impl CalendarStats {
    /// Total entries dispatched across all kinds.
    pub fn total_dispatched(&self) -> u64 {
        self.kinds.iter().map(|k| k.dispatched).sum()
    }

    /// Total entries superseded across all kinds.
    pub fn total_superseded(&self) -> u64 {
        self.kinds.iter().map(|k| k.superseded).sum()
    }

    /// Total entries scheduled across all kinds.
    pub fn total_scheduled(&self) -> u64 {
        self.kinds.iter().map(|k| k.scheduled).sum()
    }
}

/// The calendar proper: a min-heap of `(cycle, kind rank, seq)` with
/// per-kind latest-scheduled dedup and profiling counters.
#[derive(Debug, Default)]
pub struct Calendar {
    heap: BinaryHeap<Reverse<(Cycle, u8, u64)>>,
    /// Most recently scheduled cycle per kind; `Cycle::MAX` = none
    /// pending. Guards against duplicate `(kind, cycle)` entries.
    latest: [Cycle; KIND_COUNT],
    seq: u64,
    stats: CalendarStats,
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            latest: [Cycle::MAX; KIND_COUNT],
            seq: 0,
            stats: CalendarStats::default(),
        }
    }

    /// Schedules `kind` at `cycle`. Re-scheduling the pending
    /// `(kind, cycle)` pair is a no-op; a different cycle pushes a new
    /// entry and leaves the old one to be superseded at pop time.
    pub fn schedule(&mut self, kind: CalendarEvent, cycle: Cycle) {
        let slot = kind.rank() as usize;
        // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
        if self.latest[slot] == cycle {
            return;
        }
        // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
        self.latest[slot] = cycle;
        self.heap.push(Reverse((cycle, kind.rank(), self.seq)));
        self.seq += 1;
        // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
        self.stats.kinds[slot].scheduled += 1;
    }

    /// The earliest pending entry, if any.
    pub fn peek(&self) -> Option<(Cycle, CalendarEvent)> {
        self.heap
            .peek()
            .map(|&Reverse((c, r, _))| (c, CalendarEvent::from_rank(r)))
    }

    /// Pops the earliest entry as dispatched: the machine is advancing
    /// to it.
    pub fn dispatch_top(&mut self) {
        self.pop_top(true);
    }

    /// Pops the earliest entry as superseded: live state has moved past
    /// it (lazy cancellation).
    pub fn discard_top(&mut self) {
        self.pop_top(false);
    }

    fn pop_top(&mut self, dispatched: bool) {
        if let Some(Reverse((cycle, rank, _))) = self.heap.pop() {
            let slot = rank as usize;
            // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
            if self.latest[slot] == cycle {
                // The pending entry for this kind left the heap; allow
                // the same (kind, cycle) to be scheduled again.
                // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
                self.latest[slot] = Cycle::MAX;
            }
            // soe-lint: allow(slice-index): rank of a KIND_COUNT-variant fieldless enum
            let k = &mut self.stats.kinds[slot];
            if dispatched {
                k.dispatched += 1;
            } else {
                k.superseded += 1;
            }
        }
    }

    /// Number of pending entries (including ones that will be
    /// superseded).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Scheduling/dispatch counters.
    pub fn stats(&self) -> &CalendarStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_in_cycle_then_rank_order() {
        let mut c = Calendar::new();
        c.schedule(CalendarEvent::PolicyDecision, 10);
        c.schedule(CalendarEvent::RobComplete, 10);
        c.schedule(CalendarEvent::FetchResume, 5);
        assert_eq!(c.peek(), Some((5, CalendarEvent::FetchResume)));
        c.dispatch_top();
        assert_eq!(c.peek(), Some((10, CalendarEvent::RobComplete)));
        c.dispatch_top();
        assert_eq!(c.peek(), Some((10, CalendarEvent::PolicyDecision)));
    }

    #[test]
    fn rescheduling_same_cycle_is_deduped() {
        let mut c = Calendar::new();
        c.schedule(CalendarEvent::RobComplete, 7);
        c.schedule(CalendarEvent::RobComplete, 7);
        c.schedule(CalendarEvent::RobComplete, 7);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.stats().kinds[CalendarEvent::RobComplete as usize].scheduled,
            1
        );
    }

    #[test]
    fn rescheduling_after_pop_is_allowed() {
        let mut c = Calendar::new();
        c.schedule(CalendarEvent::StoreDrain, 3);
        c.dispatch_top();
        c.schedule(CalendarEvent::StoreDrain, 3);
        assert_eq!(c.peek(), Some((3, CalendarEvent::StoreDrain)));
    }

    #[test]
    fn superseded_entries_are_counted_separately() {
        let mut c = Calendar::new();
        c.schedule(CalendarEvent::RobComplete, 4);
        c.schedule(CalendarEvent::RobComplete, 9);
        c.discard_top();
        c.dispatch_top();
        let k = c.stats().kinds[CalendarEvent::RobComplete as usize];
        assert_eq!((k.scheduled, k.dispatched, k.superseded), (2, 1, 1));
    }
}
